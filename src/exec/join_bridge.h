#ifndef ACCORDION_EXEC_JOIN_BRIDGE_H_
#define ACCORDION_EXEC_JOIN_BRIDGE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "vector/page.h"

namespace accordion {

/// Shared hash table connecting a task's build pipeline to its probe
/// pipeline (paper Fig. 7). Build drivers append pages concurrently; the
/// last finishing driver constructs the index and flips `built`. Probe
/// drivers stay blocked until then (paper §4.1: "probe-side data
/// processing must wait for the build side").
class JoinBridge {
 public:
  JoinBridge(std::vector<DataType> build_types, std::vector<int> build_keys);

  // --- build side ---
  void AddBuildDriver() { ++build_drivers_; }
  void AddBuildPage(const PagePtr& page);
  /// Returns true for the caller that finalized the table.
  bool BuildDriverFinished();

  bool built() const { return built_.load(); }
  int64_t build_rows() const;
  /// Wall time spent constructing the index (the T_build component of the
  /// paper's state-transfer accounting).
  int64_t build_index_micros() const { return build_index_us_.load(); }

  // --- probe side ---
  /// Appends to `probe_rows`/`build_rows` the matching row pairs for every
  /// row of `probe` (equality on all key channels). Requires built().
  void Probe(const Page& probe, const std::vector<int>& probe_keys,
             std::vector<int32_t>* probe_rows,
             std::vector<int64_t>* build_rows) const;

  /// Gathers `channel` of the accumulated build rows at `rows`.
  Column GatherBuild(int channel, const std::vector<int64_t>& rows) const;

 private:
  bool KeysEqualRow(const Page& probe, const std::vector<int>& probe_keys,
                    int64_t probe_row, int64_t build_row) const;

  std::vector<DataType> build_types_;
  std::vector<int> build_keys_;

  mutable std::mutex mutex_;
  std::vector<Column> data_;  // accumulated build rows, all channels
  std::unordered_map<uint64_t, std::vector<int64_t>> index_;
  std::atomic<int> build_drivers_{0};
  std::atomic<bool> built_{false};
  std::atomic<int64_t> build_index_us_{0};
};

}  // namespace accordion

#endif  // ACCORDION_EXEC_JOIN_BRIDGE_H_
