#include "exec/pipeline.h"

#include "common/logging.h"

namespace accordion {
namespace {

class PipelineCompiler {
 public:
  explicit PipelineCompiler(PipelineBuildContext* ctx) : ctx_(ctx) {}

  std::vector<Pipeline> Run(const PlanFragment& fragment) {
    current_stateful_ = false;
    std::vector<OperatorFactoryPtr> main = Compile(fragment.root);
    main.push_back(MakeTaskOutputFactory(ctx_->output_buffer));
    Pipeline output_pipeline;
    output_pipeline.factories = std::move(main);
    output_pipeline.tunable = !current_stateful_;
    output_pipeline.is_output = true;
    pipelines_.push_back(std::move(output_pipeline));
    for (size_t i = 0; i < pipelines_.size(); ++i) {
      pipelines_[i].id = static_cast<int>(i);
    }
    return std::move(pipelines_);
  }

 private:
  /// Returns the factory chain of the subtree that stays in the current
  /// pipeline; pushes completed (sink-terminated) pipelines as it goes.
  std::vector<OperatorFactoryPtr> Compile(const PlanNodePtr& node) {
    switch (node->kind()) {
      case PlanNodeKind::kTableScan:
        return {MakeTableScanFactory(ctx_->next_split, ctx_->open_split)};
      case PlanNodeKind::kValues: {
        const auto& values = static_cast<const ValuesNode&>(*node);
        return {MakeValuesFactory(values.pages())};
      }
      case PlanNodeKind::kRemoteSource: {
        const auto& source = static_cast<const RemoteSourceNode&>(*node);
        return {MakeExchangeFactory(
            ctx_->exchange_client(source.source_stage_id()))};
      }
      case PlanNodeKind::kFilter: {
        const auto& filter = static_cast<const FilterNode&>(*node);
        auto chain = Compile(node->children()[0]);
        chain.push_back(MakeFilterFactory(filter.predicate()));
        return chain;
      }
      case PlanNodeKind::kProject: {
        const auto& project = static_cast<const ProjectNode&>(*node);
        auto chain = Compile(node->children()[0]);
        chain.push_back(MakeProjectFactory(project.exprs()));
        return chain;
      }
      case PlanNodeKind::kLimit: {
        const auto& limit = static_cast<const LimitNode&>(*node);
        auto chain = Compile(node->children()[0]);
        chain.push_back(MakeLimitFactory(limit.limit()));
        return chain;
      }
      case PlanNodeKind::kPartialAggregation: {
        const auto& agg = static_cast<const PartialAggregationNode&>(*node);
        auto chain = Compile(node->children()[0]);
        chain.push_back(MakePartialAggFactory(
            agg.group_by(), agg.aggregates(),
            node->children()[0]->output_types()));
        return chain;
      }
      case PlanNodeKind::kFinalAggregation: {
        const auto& agg = static_cast<const FinalAggregationNode&>(*node);
        auto chain = Compile(node->children()[0]);
        chain.push_back(MakeFinalAggFactory(
            agg.group_by(), agg.aggregates(),
            node->children()[0]->output_types()));
        current_stateful_ = true;
        return chain;
      }
      case PlanNodeKind::kTopN: {
        const auto& topn = static_cast<const TopNNode&>(*node);
        auto chain = Compile(node->children()[0]);
        chain.push_back(
            MakeTopNFactory(topn.keys(), topn.limit(), node->output_types()));
        if (!topn.partial()) current_stateful_ = true;
        return chain;
      }
      case PlanNodeKind::kLocalExchange: {
        // Pipeline breaker: child subtree + sink become their own
        // pipeline; the current pipeline starts from the source.
        LocalExchange* exchange = ctx_->local_exchange(node->id());
        bool saved_stateful = current_stateful_;
        current_stateful_ = false;
        auto child_chain = Compile(node->children()[0]);
        child_chain.push_back(MakeLocalExchangeSinkFactory(exchange));
        Pipeline sink_pipeline;
        sink_pipeline.factories = std::move(child_chain);
        sink_pipeline.tunable = !current_stateful_;
        pipelines_.push_back(std::move(sink_pipeline));
        current_stateful_ = saved_stateful;
        return {MakeLocalExchangeSourceFactory(exchange)};
      }
      case PlanNodeKind::kHashJoin: {
        const auto& join = static_cast<const HashJoinNode&>(*node);
        JoinBridge* bridge = ctx_->join_bridge(
            node->id(), join.build()->output_types(), join.build_keys(),
            join.join_type(), join.probe()->output_types());
        // Build side becomes its own pipeline ending in HashBuilder.
        bool saved_stateful = current_stateful_;
        current_stateful_ = false;
        auto build_chain = Compile(join.build());
        build_chain.push_back(MakeHashBuildFactory(bridge));
        Pipeline build_pipeline;
        build_pipeline.factories = std::move(build_chain);
        build_pipeline.tunable = !current_stateful_;
        pipelines_.push_back(std::move(build_pipeline));
        current_stateful_ = saved_stateful;
        // Probe side continues the current pipeline.
        auto probe_chain = Compile(join.probe());
        probe_chain.push_back(MakeLookupJoinFactory(
            bridge, join.probe_keys(), join.build_output_channels(),
            join.join_type()));
        return probe_chain;
      }
      case PlanNodeKind::kOutput:
      case PlanNodeKind::kShufflePassThrough:
        return Compile(node->children()[0]);
      case PlanNodeKind::kExchange:
        ACC_CHECK(false) << "exchange nodes must be fragmented away";
        return {};
      default:
        ACC_CHECK(false) << "cannot compile "
                         << PlanNodeKindName(node->kind());
        return {};
    }
  }

  PipelineBuildContext* ctx_;
  std::vector<Pipeline> pipelines_;
  bool current_stateful_ = false;
};

}  // namespace

std::string Pipeline::ToString() const {
  std::string s = "Pipeline " + std::to_string(id) + ": ";
  for (size_t i = 0; i < factories.size(); ++i) {
    if (i) s += " -> ";
    s += factories[i]->Name();
  }
  if (!tunable) s += " [pinned]";
  return s;
}

std::vector<Pipeline> BuildPipelines(const PlanFragment& fragment,
                                     PipelineBuildContext* ctx) {
  return PipelineCompiler(ctx).Run(fragment);
}

}  // namespace accordion
