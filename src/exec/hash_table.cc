#include "exec/hash_table.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "exec/simd_probe.h"
#include "vector/hashing.h"

namespace accordion {
namespace {

bool IsFixedWidth(DataType type) { return type != DataType::kString; }

void AppendRaw64(std::string* out, const void* p) {
  out->append(reinterpret_cast<const char*>(p), 8);
}

/// Shared tail of the batched join probes: one sizing pass over the
/// resolved ids totals the CSR span lengths, both outputs grow exactly
/// once, then a fill pass writes match pairs through raw pointers.
void ExpandSpans(const int64_t* ids, int64_t n, const int64_t* span_offsets,
                 const int64_t* span_rows, const int32_t* row_map,
                 std::vector<int32_t>* probe_rows,
                 std::vector<int64_t>* build_rows) {
  // The CSR arrays are randomly indexed by build id, so for out-of-cache
  // tables each pass is a cache-miss chain. The sizing pass prefetches the
  // offsets array ahead of itself and stages each id's span start/length;
  // the fill pass then never re-touches span_offsets, and the span_rows
  // lines it needs were requested a pass earlier.
  constexpr int64_t kDistance = 16;
  static thread_local std::vector<int64_t> starts;
  static thread_local std::vector<int64_t> lens;
  starts.resize(static_cast<size_t>(n));
  lens.resize(static_cast<size_t>(n));
  int64_t total = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (i + kDistance < n && ids[i + kDistance] >= 0) {
      __builtin_prefetch(&span_offsets[ids[i + kDistance]]);
    }
    const int64_t id = ids[i];
    if (id < 0) {
      lens[i] = 0;
      continue;
    }
    const int64_t start = span_offsets[id];
    const int64_t len = span_offsets[id + 1] - start;
    starts[i] = start;
    lens[i] = len;
    total += len;
    __builtin_prefetch(&span_rows[start]);
  }
  if (total == 0) return;
  const size_t base = probe_rows->size();
  probe_rows->resize(base + static_cast<size_t>(total));
  build_rows->resize(build_rows->size() + static_cast<size_t>(total));
  int32_t* pr = probe_rows->data() + base;
  int64_t* br = build_rows->data() + (build_rows->size() - total);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t len = lens[i];
    if (len == 0) continue;
    if (i + kDistance < n && lens[i + kDistance] != 0) {
      __builtin_prefetch(&span_rows[starts[i + kDistance]]);
    }
    const int32_t probe_row =
        row_map != nullptr ? row_map[i] : static_cast<int32_t>(i);
    const int64_t start = starts[i];
    for (int64_t j = 0; j < len; ++j) {
      *pr++ = probe_row;
      *br++ = span_rows[start + j];
    }
  }
}

}  // namespace

bool HashTable::SimdSupported() { return simd::Avx2Supported(); }

void HashTable::HashWords(const int64_t* words, int64_t n, uint64_t* hashes,
                          bool allow_simd) {
  if (allow_simd && simd::Avx2Supported()) {
    simd::HashWordsAvx2(words, n, Page::kHashSeed, hashes);
    return;
  }
  for (int64_t i = 0; i < n; ++i) {
    hashes[i] = Mix64(static_cast<uint64_t>(words[i]) ^ Page::kHashSeed);
  }
}

HashTable::HashTable(std::vector<DataType> key_types)
    : key_types_(std::move(key_types)),
      num_key_cols_(static_cast<int>(key_types_.size())) {
  fixed_width_ = true;
  for (DataType t : key_types_) fixed_width_ &= IsFixedWidth(t);
  word_mode_ = fixed_width_ && num_key_cols_ == 1;
  fixed_stride_ = word_mode_ ? 1 : num_key_cols_ + 1;
  slots_.assign(kInitialCapacity, Slot{});
  mask_ = kInitialCapacity - 1;
}

void HashTable::PrepareBatch(const std::vector<const Column*>& keys,
                             int64_t num_rows, Scratch* scratch,
                             const uint64_t* external_hashes) const {
  ACC_CHECK(static_cast<int>(keys.size()) == num_key_cols_)
      << "key column count mismatch";
  if (word_mode_) {
    // Single fixed-width key — the dominant TPC-H case. Integer-backed
    // columns are used in place as the packed key array; doubles pack
    // their bit patterns once. Hashing is fused into one pass with no
    // seed-initialization sweep, matching Column::HashInto bit-for-bit.
    scratch->valid_data =
        keys[0]->may_have_nulls() ? keys[0]->validity().data() : nullptr;
    if (keys[0]->type() != DataType::kDouble) {
      scratch->words_data = keys[0]->ints().data();
    } else {
      scratch->words.resize(static_cast<size_t>(num_rows));
      std::memcpy(scratch->words.data(), keys[0]->doubles().data(),
                  static_cast<size_t>(num_rows) * 8);
      scratch->words_data = scratch->words.data();
    }
    if (external_hashes != nullptr) {
      scratch->hashes_data = external_hashes;
      return;
    }
    scratch->hashes.resize(static_cast<size_t>(num_rows));
    uint64_t* h = scratch->hashes.data();
    const int64_t* k = scratch->words_data;
    for (int64_t i = 0; i < num_rows; ++i) {
      h[i] = Mix64(static_cast<uint64_t>(k[i]) ^ Page::kHashSeed);
    }
    scratch->hashes_data = scratch->hashes.data();
    return;
  }

  if (external_hashes != nullptr) {
    scratch->hashes_data = external_hashes;
  } else {
    scratch->hashes.assign(static_cast<size_t>(num_rows), Page::kHashSeed);
    for (const Column* col : keys) col->HashInto(&scratch->hashes);
    scratch->hashes_data = scratch->hashes.data();
  }

  bool any_nullable = false;
  for (const Column* col : keys) any_nullable |= col->may_have_nulls();
  if (any_nullable) {
    scratch->row_valid.assign(static_cast<size_t>(num_rows), 1);
    scratch->valid_data = scratch->row_valid.data();
  } else {
    scratch->valid_data = nullptr;
  }

  if (fixed_width_) {
    // Pack key words row-major, fixed_stride_ per row: the key words, then
    // one null-mask word (bit c set = column c NULL; NULL payloads are the
    // column's canonical zero, so equal tuples stay memcmp-equal).
    scratch->words.resize(static_cast<size_t>(num_rows) * fixed_stride_);
    int64_t* words = scratch->words.data();
    for (int c = 0; c < num_key_cols_; ++c) {
      const Column& col = *keys[c];
      if (col.type() == DataType::kDouble) {
        const double* src = col.doubles().data();
        for (int64_t i = 0; i < num_rows; ++i) {
          std::memcpy(&words[i * fixed_stride_ + c], &src[i], 8);
        }
      } else {
        const int64_t* src = col.ints().data();
        for (int64_t i = 0; i < num_rows; ++i) {
          words[i * fixed_stride_ + c] = src[i];
        }
      }
    }
    for (int64_t i = 0; i < num_rows; ++i) {
      words[i * fixed_stride_ + num_key_cols_] = 0;
    }
    for (int c = 0; c < num_key_cols_; ++c) {
      if (!keys[c]->may_have_nulls()) continue;
      const uint8_t* valid = keys[c]->validity().data();
      for (int64_t i = 0; i < num_rows; ++i) {
        if (valid[i] == 0) {
          words[i * fixed_stride_ + num_key_cols_] |= int64_t{1} << c;
          // Canonicalize the payload so NULL tuples stay memcmp-equal even
          // if a source buffer carried a stale word under its null bit.
          words[i * fixed_stride_ + c] = 0;
          scratch->row_valid[i] = 0;
        }
      }
    }
    scratch->words_data = scratch->words.data();
    return;
  }

  // Serialized fallback: one pass per key column into a shared buffer.
  // Row-major layout requires per-row appends, so iterate rows outer but
  // reuse the single scratch buffer — no per-row string allocation.
  scratch->bytes.clear();
  scratch->offsets.resize(static_cast<size_t>(num_rows) + 1);
  for (int64_t i = 0; i < num_rows; ++i) {
    scratch->offsets[i] = static_cast<int64_t>(scratch->bytes.size());
    for (int c = 0; c < num_key_cols_; ++c) {
      const Column& col = *keys[c];
      // Validity prefix byte per value: distinguishes NULL from 0 and from
      // the empty string; a NULL writes no payload at all.
      if (col.IsNull(i)) {
        scratch->bytes.push_back('\0');
        scratch->row_valid[i] = 0;
        continue;
      }
      scratch->bytes.push_back('\1');
      switch (col.type()) {
        case DataType::kString: {
          const std::string& s = col.StrAt(i);
          uint32_t len = static_cast<uint32_t>(s.size());
          scratch->bytes.append(reinterpret_cast<const char*>(&len), 4);
          scratch->bytes.append(s);
          break;
        }
        case DataType::kDouble: {
          double d = col.DoubleAt(i);
          AppendRaw64(&scratch->bytes, &d);
          break;
        }
        default: {
          int64_t v = col.IntAt(i);
          AppendRaw64(&scratch->bytes, &v);
          break;
        }
      }
    }
  }
  scratch->offsets[num_rows] = static_cast<int64_t>(scratch->bytes.size());
}

bool HashTable::KeyEquals(int64_t id, const Scratch& scratch,
                          int64_t row) const {
  if (fixed_width_) {
    if (word_mode_) return fixed_keys_[id] == scratch.words_data[row];
    // Compares key words plus the trailing null-mask word in one sweep.
    // data() arithmetic: num_key_cols_ may be 0 (global aggregation).
    return std::memcmp(fixed_keys_.data() + id * fixed_stride_,
                       scratch.words_data + row * fixed_stride_,
                       static_cast<size_t>(fixed_stride_) * 8) == 0;
  }
  const auto& [offset, length] = spans_[id];
  int64_t row_len = scratch.offsets[row + 1] - scratch.offsets[row];
  return row_len == length &&
         std::memcmp(arena_.data() + offset,
                     scratch.bytes.data() + scratch.offsets[row],
                     static_cast<size_t>(length)) == 0;
}

void HashTable::InsertKey(const Scratch& scratch, int64_t row) {
  if (fixed_width_) {
    const int64_t* words = scratch.words_data + row * fixed_stride_;
    fixed_keys_.insert(fixed_keys_.end(), words, words + fixed_stride_);
    return;
  }
  int64_t offset = scratch.offsets[row];
  int64_t length = scratch.offsets[row + 1] - offset;
  spans_.emplace_back(static_cast<int64_t>(arena_.size()), length);
  arena_.append(scratch.bytes.data() + offset, static_cast<size_t>(length));
}

void HashTable::Reserve(int64_t expected_keys) {
  int64_t needed = kInitialCapacity;
  // Size so `expected_keys` stays under the 0.7 growth threshold.
  while (expected_keys * 10 > needed * 7) needed *= 2;
  if (needed <= static_cast<int64_t>(slots_.size())) return;
  ACC_CHECK(num_keys_ == 0) << "Reserve on a populated table";
  slots_.assign(static_cast<size_t>(needed), Slot{});
  mask_ = static_cast<uint64_t>(needed) - 1;
  if (fixed_width_) {
    fixed_keys_.reserve(static_cast<size_t>(expected_keys) * fixed_stride_);
  } else {
    spans_.reserve(static_cast<size_t>(expected_keys));
  }
}

void HashTable::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.id == kEmptyId) continue;
    // Word-mode slots store the key itself; recompute its hash to place it.
    uint64_t h = word_mode_ ? Mix64(s.tag ^ Page::kHashSeed) : s.tag;
    uint64_t pos = h & mask_;
    while (slots_[pos].id != kEmptyId) pos = (pos + 1) & mask_;
    slots_[pos] = s;
  }
}

// Hide the DRAM latency of random slot access behind the row loop: by the
// time row i is processed, its slot line was requested kPrefetchDistance
// iterations earlier.
constexpr int64_t kPrefetchDistance = 16;

void HashTable::LookupBatch(const Scratch& scratch, int64_t num_rows,
                            std::vector<int64_t>* ids) {
  ids->resize(static_cast<size_t>(num_rows));
  int64_t* out = ids->data();
  if (word_mode_) {
    // Single-word keys: the slot stores the key word, so both the
    // equality check and the miss-insert need no canonical-key access.
    // Members are used directly because Grow() may move the slot buffer.
    const int64_t* words = scratch.words_data;
    const uint64_t* hashes = scratch.hashes_data;
    const uint8_t* valid = scratch.valid_data;
    for (int64_t i = 0; i < num_rows; ++i) {
      if (i + kPrefetchDistance < num_rows) {
        __builtin_prefetch(&slots_[hashes[i + kPrefetchDistance] & mask_]);
      }
      if (valid != nullptr && valid[i] == 0) {
        // NULL key: one dedicated group id, outside the slot array (the
        // slot tag is the raw word and cannot encode "NULL" vs 0).
        if (null_group_id_ < 0) {
          null_group_id_ = num_keys_++;
          fixed_keys_.push_back(0);
        }
        out[i] = null_group_id_;
        continue;
      }
      if ((num_keys_ + 1) * 10 > static_cast<int64_t>(slots_.size()) * 7) {
        Grow();
      }
      const uint64_t w = static_cast<uint64_t>(words[i]);
      uint64_t pos = hashes[i] & mask_;
      while (true) {
        Slot& slot = slots_[pos];
        if (slot.id == kEmptyId) {
          slot.tag = w;
          slot.id = num_keys_++;
          fixed_keys_.push_back(words[i]);
          out[i] = slot.id;
          break;
        }
        if (slot.tag == w) {
          out[i] = slot.id;
          break;
        }
        pos = (pos + 1) & mask_;
      }
    }
    return;
  }
  for (int64_t i = 0; i < num_rows; ++i) {
    if (i + kPrefetchDistance < num_rows) {
      __builtin_prefetch(&slots_[scratch.hashes_data[i + kPrefetchDistance] & mask_]);
    }
    // Keep load below ~0.7 so linear probe chains stay short.
    if ((num_keys_ + 1) * 10 > static_cast<int64_t>(slots_.size()) * 7) {
      Grow();
    }
    uint64_t h = scratch.hashes_data[i];
    uint64_t pos = h & mask_;
    while (true) {
      Slot& slot = slots_[pos];
      if (slot.id == kEmptyId) {
        slot.tag = h;
        slot.id = num_keys_++;
        InsertKey(scratch, i);
        out[i] = slot.id;
        break;
      }
      if (slot.tag == h && KeyEquals(slot.id, scratch, i)) {
        out[i] = slot.id;
        break;
      }
      pos = (pos + 1) & mask_;
    }
  }
}

void HashTable::FindBatch(const Scratch& scratch, int64_t num_rows,
                          std::vector<int64_t>* ids) const {
  ids->resize(static_cast<size_t>(num_rows));
  int64_t* out = ids->data();
  if (word_mode_) {
    // Single-word keys: the slot comparison is the full equality check —
    // one random access per row, everything else in registers.
    const Slot* slots = slots_.data();
    const int64_t* words = scratch.words_data;
    const uint64_t* hashes = scratch.hashes_data;
    const uint8_t* valid = scratch.valid_data;
    const uint64_t mask = mask_;
    for (int64_t i = 0; i < num_rows; ++i) {
      if (i + kPrefetchDistance < num_rows) {
        __builtin_prefetch(&slots[hashes[i + kPrefetchDistance] & mask]);
      }
      if (valid != nullptr && valid[i] == 0) {
        out[i] = null_group_id_;  // -1 (miss) until a NULL key was inserted
        continue;
      }
      const uint64_t w = static_cast<uint64_t>(words[i]);
      uint64_t pos = hashes[i] & mask;
      int64_t found = -1;
      while (true) {
        const Slot& slot = slots[pos];
        if (slot.id == kEmptyId) break;
        if (slot.tag == w) {
          found = slot.id;
          break;
        }
        pos = (pos + 1) & mask;
      }
      out[i] = found;
    }
    return;
  }
  for (int64_t i = 0; i < num_rows; ++i) {
    if (i + kPrefetchDistance < num_rows) {
      __builtin_prefetch(&slots_[scratch.hashes_data[i + kPrefetchDistance] & mask_]);
    }
    uint64_t h = scratch.hashes_data[i];
    uint64_t pos = h & mask_;
    int64_t found = -1;
    while (true) {
      const Slot& slot = slots_[pos];
      if (slot.id == kEmptyId) break;
      if (slot.tag == h && KeyEquals(slot.id, scratch, i)) {
        found = slot.id;
        break;
      }
      pos = (pos + 1) & mask_;
    }
    out[i] = found;
  }
}

void HashTable::LookupOrInsert(const Page& page,
                               const std::vector<int>& channels,
                               std::vector<int64_t>* ids) {
  std::vector<const Column*> keys;
  keys.reserve(channels.size());
  for (int ch : channels) keys.push_back(&page.column(ch));
  LookupOrInsert(keys, page.num_rows(), ids);
}

void HashTable::LookupOrInsert(const std::vector<const Column*>& keys,
                               int64_t num_rows, std::vector<int64_t>* ids) {
  if (num_key_cols_ == 0) {
    // Keyless (global aggregation): every row is the single group 0; no
    // hashing or probing at all.
    if (num_rows > 0) num_keys_ = 1;
    ids->assign(static_cast<size_t>(num_rows), 0);
    return;
  }
  PrepareBatch(keys, num_rows, &scratch_);
  LookupBatch(scratch_, num_rows, ids);
}

void HashTable::LookupOrInsertHashed(const std::vector<const Column*>& keys,
                                     int64_t num_rows, const uint64_t* hashes,
                                     std::vector<int64_t>* ids) {
  if (num_key_cols_ == 0) {
    if (num_rows > 0) num_keys_ = 1;
    ids->assign(static_cast<size_t>(num_rows), 0);
    return;
  }
  PrepareBatch(keys, num_rows, &scratch_, hashes);
  LookupBatch(scratch_, num_rows, ids);
}

void HashTable::Find(const Page& page, const std::vector<int>& channels,
                     std::vector<int64_t>* ids) const {
  if (num_key_cols_ == 0) {
    ids->assign(static_cast<size_t>(page.num_rows()), num_keys_ > 0 ? 0 : -1);
    return;
  }
  std::vector<const Column*> keys;
  keys.reserve(channels.size());
  for (int ch : channels) keys.push_back(&page.column(ch));
  // Thread-local: Find must be thread-safe across concurrent probe
  // drivers, and reusing the buffers avoids per-page allocations.
  static thread_local Scratch scratch;
  PrepareBatch(keys, page.num_rows(), &scratch);
  FindBatch(scratch, page.num_rows(), ids);
}

void HashTable::FindJoin(const Page& page, const std::vector<int>& channels,
                         const int64_t* span_offsets, const int64_t* span_rows,
                         std::vector<int32_t>* probe_rows,
                         std::vector<int64_t>* build_rows) const {
  const int64_t num_rows = page.num_rows();
  if (num_key_cols_ == 0) {
    // Degenerate cross-match on the single keyless group.
    if (num_keys_ == 0) return;
    for (int64_t i = 0; i < num_rows; ++i) {
      for (int64_t j = span_offsets[0]; j < span_offsets[1]; ++j) {
        probe_rows->push_back(static_cast<int32_t>(i));
        build_rows->push_back(span_rows[j]);
      }
    }
    return;
  }
  probe_rows->reserve(probe_rows->size() + static_cast<size_t>(num_rows));
  build_rows->reserve(build_rows->size() + static_cast<size_t>(num_rows));
  std::vector<const Column*> keys;
  keys.reserve(channels.size());
  for (int ch : channels) keys.push_back(&page.column(ch));
  static thread_local Scratch scratch;
  PrepareBatch(keys, num_rows, &scratch);
  const Slot* slots = slots_.data();
  const uint64_t* hashes = scratch.hashes_data;
  const uint64_t mask = mask_;
  const int64_t* words = scratch.words_data;
  const uint8_t* valid = scratch.valid_data;
  if (word_mode_) {
    for (int64_t i = 0; i < num_rows; ++i) {
      if (i + kPrefetchDistance < num_rows) {
        __builtin_prefetch(&slots[hashes[i + kPrefetchDistance] & mask]);
      }
      // SQL join equality: a NULL probe key matches nothing — not even an
      // inserted NULL-key group.
      if (valid != nullptr && valid[i] == 0) continue;
      const uint64_t w = static_cast<uint64_t>(words[i]);
      uint64_t pos = hashes[i] & mask;
      int64_t id = -1;
      while (true) {
        const Slot& slot = slots[pos];
        if (slot.id == kEmptyId) break;
        if (slot.tag == w) {
          id = slot.id;
          break;
        }
        pos = (pos + 1) & mask;
      }
      if (id < 0) continue;
      for (int64_t j = span_offsets[id]; j < span_offsets[id + 1]; ++j) {
        probe_rows->push_back(static_cast<int32_t>(i));
        build_rows->push_back(span_rows[j]);
      }
    }
    return;
  }
  for (int64_t i = 0; i < num_rows; ++i) {
    if (i + kPrefetchDistance < num_rows) {
      __builtin_prefetch(&slots[hashes[i + kPrefetchDistance] & mask]);
    }
    // SQL join equality: a tuple with any NULL key matches nothing, even
    // though the canonical encoding would find an identical NULL tuple.
    if (valid != nullptr && valid[i] == 0) continue;
    uint64_t h = hashes[i];
    uint64_t pos = h & mask;
    int64_t id = -1;
    while (true) {
      const Slot& slot = slots[pos];
      if (slot.id == kEmptyId) break;
      if (slot.tag == h && KeyEquals(slot.id, scratch, i)) {
        id = slot.id;
        break;
      }
      pos = (pos + 1) & mask;
    }
    if (id < 0) continue;
    for (int64_t j = span_offsets[id]; j < span_offsets[id + 1]; ++j) {
      probe_rows->push_back(static_cast<int32_t>(i));
      build_rows->push_back(span_rows[j]);
    }
  }
}

void HashTable::FindIds(const int64_t* words, const uint64_t* hashes,
                        int64_t n, int64_t* ids, bool use_simd) const {
  ACC_CHECK(word_mode_) << "FindIds requires a single fixed-width key";
  if (use_simd && SimdSupported()) {
    static_assert(sizeof(Slot) == 16, "AVX2 gather assumes 16-byte slots");
    simd::FindIdsAvx2(slots_.data(), mask_, words, hashes, n, ids);
    return;
  }
  const Slot* slots = slots_.data();
  const uint64_t mask = mask_;
  for (int64_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n) {
      __builtin_prefetch(&slots[hashes[i + kPrefetchDistance] & mask]);
    }
    const uint64_t w = static_cast<uint64_t>(words[i]);
    uint64_t pos = hashes[i] & mask;
    int64_t found = -1;
    while (true) {
      const Slot& slot = slots[pos];
      if (slot.id == kEmptyId) break;
      if (slot.tag == w) {
        found = slot.id;
        break;
      }
      pos = (pos + 1) & mask;
    }
    ids[i] = found;
  }
}

void HashTable::FindJoinBatch(const Page& page,
                              const std::vector<int>& channels,
                              const int64_t* span_offsets,
                              const int64_t* span_rows,
                              std::vector<int32_t>* probe_rows,
                              std::vector<int64_t>* build_rows,
                              bool allow_simd) const {
  const int64_t num_rows = page.num_rows();
  if (num_key_cols_ == 0) {
    // Degenerate cross-match on the single keyless group.
    if (num_keys_ == 0) return;
    for (int64_t i = 0; i < num_rows; ++i) {
      for (int64_t j = span_offsets[0]; j < span_offsets[1]; ++j) {
        probe_rows->push_back(static_cast<int32_t>(i));
        build_rows->push_back(span_rows[j]);
      }
    }
    return;
  }
  if (num_rows == 0) return;
  std::vector<const Column*> keys;
  keys.reserve(channels.size());
  for (int ch : channels) keys.push_back(&page.column(ch));
  static thread_local Scratch scratch;
  static thread_local std::vector<int64_t> ids;
  ids.resize(static_cast<size_t>(num_rows));
  if (word_mode_) {
    const bool use_simd = allow_simd && SimdSupported();
    // Alias the (pre-sized) hash buffer as "external" so PrepareBatch
    // only sets up the key words, then hash with the vectorized Mix64.
    scratch.hashes.resize(static_cast<size_t>(num_rows));
    PrepareBatch(keys, num_rows, &scratch, scratch.hashes.data());
    HashWords(scratch.words_data, num_rows, scratch.hashes.data(), use_simd);
    FindIds(scratch.words_data, scratch.hashes.data(), num_rows, ids.data(),
            use_simd);
    if (scratch.valid_data != nullptr) {
      // NULL probe keys carry a zeroed payload word and would otherwise
      // match a genuine 0 key; patch them to misses after the batch kernel
      // so the SIMD path stays branch-free.
      const uint8_t* valid = scratch.valid_data;
      for (int64_t i = 0; i < num_rows; ++i) {
        if (valid[i] == 0) ids[i] = -1;
      }
    }
  } else {
    PrepareBatch(keys, num_rows, &scratch);
    FindBatch(scratch, num_rows, &ids);
    if (scratch.valid_data != nullptr) {
      // FindBatch uses group equality (a NULL tuple finds the NULL-tuple
      // key); joins must treat those rows as misses.
      const uint8_t* valid = scratch.valid_data;
      for (int64_t i = 0; i < num_rows; ++i) {
        if (valid[i] == 0) ids[i] = -1;
      }
    }
  }
  ExpandSpans(ids.data(), num_rows, span_offsets, span_rows,
              /*row_map=*/nullptr, probe_rows, build_rows);
}

void HashTable::FindJoinHashed(const int64_t* words, const uint64_t* hashes,
                               int64_t n, const int64_t* span_offsets,
                               const int64_t* span_rows,
                               const int32_t* row_map,
                               std::vector<int32_t>* probe_rows,
                               std::vector<int64_t>* build_rows,
                               bool allow_simd) const {
  if (n == 0) return;
  static thread_local std::vector<int64_t> ids;
  ids.resize(static_cast<size_t>(n));
  FindIds(words, hashes, n, ids.data(), allow_simd && SimdSupported());
  ExpandSpans(ids.data(), n, span_offsets, span_rows, row_map, probe_rows,
              build_rows);
}

void HashTable::AppendKeys(int64_t begin, int64_t end,
                           std::vector<Column>* out) const {
  ACC_CHECK(static_cast<int>(out->size()) >= num_key_cols_)
      << "AppendKeys needs one output column per key";
  if (fixed_width_) {
    for (int c = 0; c < num_key_cols_; ++c) {
      Column& col = (*out)[c];
      col.Reserve(col.size() + (end - begin));
      for (int64_t id = begin; id < end; ++id) {
        if (word_mode_ ? id == null_group_id_
                       : (fixed_keys_[id * fixed_stride_ + num_key_cols_] &
                          (int64_t{1} << c)) != 0) {
          col.AppendNull();
          continue;
        }
        int64_t word = fixed_keys_[id * fixed_stride_ + c];
        if (key_types_[c] == DataType::kDouble) {
          double d;
          std::memcpy(&d, &word, 8);
          col.AppendDouble(d);
        } else {
          col.AppendInt(word);
        }
      }
    }
    return;
  }
  for (int64_t id = begin; id < end; ++id) {
    const char* p = arena_.data() + spans_[id].first;
    for (int c = 0; c < num_key_cols_; ++c) {
      Column& col = (*out)[c];
      if (*p++ == '\0') {
        col.AppendNull();
        continue;
      }
      switch (key_types_[c]) {
        case DataType::kString: {
          uint32_t len;
          std::memcpy(&len, p, 4);
          p += 4;
          col.AppendStr(std::string(p, len));
          p += len;
          break;
        }
        case DataType::kDouble: {
          double d;
          std::memcpy(&d, p, 8);
          p += 8;
          col.AppendDouble(d);
          break;
        }
        default: {
          int64_t v;
          std::memcpy(&v, p, 8);
          p += 8;
          col.AppendInt(v);
          break;
        }
      }
    }
  }
}

void HashTable::Clear() {
  std::fill(slots_.begin(), slots_.end(), Slot{});
  num_keys_ = 0;
  null_group_id_ = -1;
  fixed_keys_.clear();
  arena_.clear();
  spans_.clear();
}

int64_t HashTable::ByteSize() const {
  return static_cast<int64_t>(slots_.size() * sizeof(Slot) +
                              fixed_keys_.size() * 8 + arena_.size() +
                              spans_.size() * sizeof(spans_[0]));
}

}  // namespace accordion
