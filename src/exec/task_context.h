#ifndef ACCORDION_EXEC_TASK_CONTEXT_H_
#define ACCORDION_EXEC_TASK_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/resource_governor.h"
#include "common/status.h"
#include "exec/config.h"

namespace accordion {

class MorselScheduler;

/// Shared, thread-safe per-task runtime state: resource governors of the
/// hosting worker, engine config, and the metric counters that the
/// coordinator's runtime information collector reads (paper Fig. 18:
/// "drivers informations, CPU usage, NIC usage, buffer informations").
class TaskContext {
 public:
  TaskContext(std::string task_id, ResourceGovernor* cpu,
              ResourceGovernor* nic, const EngineConfig* config)
      : task_id_(std::move(task_id)),
        scheduler_group_(task_id_),
        cpu_(cpu),
        nic_(nic),
        config_(config) {}

  const std::string& task_id() const { return task_id_; }
  const EngineConfig& config() const { return *config_; }
  ResourceGovernor* cpu() { return cpu_; }
  ResourceGovernor* nic() { return nic_; }

  /// The shared CPU pool this task's units run on (config's scheduler or
  /// the process default). Defined in scheduler.cc.
  MorselScheduler* scheduler() const;

  /// Fair-queueing group of this task's units — the query id for tasks
  /// created through the cluster, the task id for standalone tasks. Set
  /// once at task construction, before any unit is enqueued.
  const std::string& scheduler_group() const { return scheduler_group_; }
  void set_scheduler_group(std::string group) {
    scheduler_group_ = std::move(group);
  }

  /// Reserves virtual CPU microseconds against the node; returns the
  /// absolute grant time. Drivers combine this with their own single-core
  /// pacing (see Driver::Charge).
  int64_t ReserveCpuMicros(double virtual_us) {
    return cpu_->ReserveMicros(virtual_us * 1e-6);
  }

  // --- memory accounting (join build sides) ---
  /// Effective build-side budget for this task's join builds: the spec's
  /// per-query override when set, else the engine-wide
  /// memory.query_build_bytes. 0 = unlimited (no spilling).
  int64_t build_budget_bytes() const {
    return build_budget_bytes_ > 0 ? build_budget_bytes_
                                   : config_->memory.query_build_bytes;
  }
  void set_build_budget_bytes(int64_t bytes) { build_budget_bytes_ = bytes; }

  /// Tracks live build-side bytes (positive deltas on accumulation/load,
  /// negative on flush/unload) and maintains the high-water mark the
  /// coordinator surfaces as QuerySnapshot::peak_build_bytes.
  void AddBuildBytes(int64_t delta) {
    int64_t now = build_bytes_.fetch_add(delta) + delta;
    int64_t peak = peak_build_bytes_.load();
    while (now > peak &&
           !peak_build_bytes_.compare_exchange_weak(peak, now)) {
    }
  }
  int64_t build_bytes() const { return build_bytes_.load(); }
  int64_t peak_build_bytes() const { return peak_build_bytes_.load(); }

  void AddSpillBytesWritten(int64_t n) { spill_bytes_written_ += n; }
  void AddSpillPartitions(int64_t n) { spill_partitions_ += n; }
  int64_t spill_bytes_written() const { return spill_bytes_written_; }
  int64_t spill_partitions() const { return spill_partitions_; }

  /// Records the probe kernel actually used (0 none, 1 scalar, 2 simd);
  /// simd is sticky across bridges so a query-level "simd" means at least
  /// one join probed vectorized.
  void RecordProbePath(bool simd) {
    int path = simd ? 2 : 1;
    int seen = probe_path_.load();
    while (path > seen && !probe_path_.compare_exchange_weak(seen, path)) {
    }
  }
  int probe_path() const { return probe_path_.load(); }

  // --- metric counters ---
  void AddOutputRows(int64_t n) { output_rows_ += n; }
  void AddOutputBytes(int64_t n) { output_bytes_ += n; }
  void AddScanRows(int64_t n) { scan_rows_ += n; }
  void AddScanTotalRows(int64_t n) { scan_total_rows_ += n; }
  void AddProcessedRows(int64_t n) { processed_rows_ += n; }
  void BufferTurnUp() { ++turn_up_counter_; }
  void SetHashBuildMicros(int64_t us) { hash_build_us_ = us; }
  void AddRpcRetry() { ++rpc_retries_; }

  int64_t output_rows() const { return output_rows_; }
  int64_t output_bytes() const { return output_bytes_; }
  int64_t scan_rows() const { return scan_rows_; }
  int64_t scan_total_rows() const { return scan_total_rows_; }
  int64_t processed_rows() const { return processed_rows_; }
  int64_t turn_up_counter() const { return turn_up_counter_; }
  int64_t hash_build_micros() const { return hash_build_us_; }
  int64_t rpc_retries() const { return rpc_retries_; }

  // --- failure reporting ---
  /// Records an unrecoverable task-local error (e.g. GetPages retry
  /// exhaustion). First failure wins; the coordinator's health monitor
  /// picks it up from TaskInfo and escalates the query to kFailed.
  void ReportFailure(const Status& status) {
    std::lock_guard<std::mutex> lock(failure_mutex_);
    if (failure_.ok()) failure_ = status;
    failed_.store(true, std::memory_order_release);
  }
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  Status failure() const {
    std::lock_guard<std::mutex> lock(failure_mutex_);
    return failure_;
  }

 private:
  std::string task_id_;
  std::string scheduler_group_;
  ResourceGovernor* cpu_;
  ResourceGovernor* nic_;
  const EngineConfig* config_;

  int64_t build_budget_bytes_ = 0;
  std::atomic<int64_t> build_bytes_{0};
  std::atomic<int64_t> peak_build_bytes_{0};
  std::atomic<int64_t> spill_bytes_written_{0};
  std::atomic<int64_t> spill_partitions_{0};
  std::atomic<int> probe_path_{0};

  std::atomic<int64_t> output_rows_{0};
  std::atomic<int64_t> output_bytes_{0};
  std::atomic<int64_t> scan_rows_{0};
  std::atomic<int64_t> scan_total_rows_{0};
  std::atomic<int64_t> processed_rows_{0};
  std::atomic<int64_t> turn_up_counter_{0};
  std::atomic<int64_t> hash_build_us_{0};
  std::atomic<int64_t> rpc_retries_{0};

  std::atomic<bool> failed_{false};
  mutable std::mutex failure_mutex_;
  Status failure_;
};

}  // namespace accordion

#endif  // ACCORDION_EXEC_TASK_CONTEXT_H_
