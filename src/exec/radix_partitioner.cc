#include "exec/radix_partitioner.h"

#include "common/logging.h"

namespace accordion {

int RadixPartitioner::ChooseBits(int64_t expected_groups,
                                 int64_t target_per_partition, int max_bits) {
  ACC_CHECK(target_per_partition > 0);
  int bits = 0;
  while (bits < max_bits &&
         (expected_groups >> bits) > target_per_partition) {
    ++bits;
  }
  return bits;
}

RadixPartitioner::RadixPartitioner(int bits) : bits_(bits), shift_(64 - bits) {
  ACC_CHECK(bits >= 1 && bits < 32) << "radix bits out of range: " << bits;
}

void RadixPartitioner::BuildSelections(
    const uint64_t* hashes, int64_t n,
    std::vector<std::vector<int32_t>>* selections) const {
  selections->resize(static_cast<size_t>(num_partitions()));
  for (auto& sel : *selections) sel.clear();
  auto* sels = selections->data();
  for (int64_t i = 0; i < n; ++i) {
    sels[hashes[i] >> shift_].push_back(static_cast<int32_t>(i));
  }
}

void RadixPartitioner::BuildModuloSelections(
    const uint64_t* hashes, int64_t n, int num_partitions,
    std::vector<std::vector<int32_t>>* selections) {
  selections->resize(static_cast<size_t>(num_partitions));
  for (auto& sel : *selections) sel.clear();
  auto* sels = selections->data();
  for (int64_t i = 0; i < n; ++i) {
    sels[hashes[i] % num_partitions].push_back(static_cast<int32_t>(i));
  }
}

PagePtr GatherSelection(const Page& page,
                        const std::vector<int32_t>& selection) {
  const int64_t count = static_cast<int64_t>(selection.size());
  // Count runs of consecutive rows first (no materialization): if the
  // selection is mostly singletons — the usual shape once hashes spread
  // rows over many partitions — the indexed gather's tight loop wins and
  // the run decomposition is skipped entirely.
  int64_t num_runs = 0;
  for (int64_t i = 0; i < count && num_runs * 4 < count;) {
    int64_t j = i + 1;
    while (j < count && selection[j] == selection[j - 1] + 1) ++j;
    ++num_runs;
    i = j;
  }
  const bool coalesce = num_runs * 4 < count;
  std::vector<std::pair<int32_t, int32_t>> runs;  // (start, length)
  if (coalesce) {
    runs.reserve(static_cast<size_t>(num_runs) + 1);
    for (int64_t i = 0; i < count;) {
      int64_t j = i + 1;
      while (j < count && selection[j] == selection[j - 1] + 1) ++j;
      runs.emplace_back(selection[i], static_cast<int32_t>(j - i));
      i = j;
    }
  }
  std::vector<Column> cols;
  cols.reserve(page.num_columns());
  for (int c = 0; c < page.num_columns(); ++c) {
    const Column& src = page.column(c);
    Column out(src.type());
    out.Reserve(count);
    if (coalesce) {
      // Long runs: each is one bulk AppendRange copy.
      for (const auto& [start, len] : runs) out.AppendRange(src, start, len);
    } else {
      out.AppendGather(src, selection.data(), count);
    }
    cols.push_back(std::move(out));
  }
  return Page::Make(std::move(cols));
}

}  // namespace accordion
