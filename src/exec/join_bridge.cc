#include "exec/join_bridge.h"

#include "common/clock.h"
#include "common/logging.h"

namespace accordion {

JoinBridge::JoinBridge(std::vector<DataType> build_types,
                       std::vector<int> build_keys)
    : build_types_(std::move(build_types)),
      build_keys_(std::move(build_keys)),
      table_(HashTable::SelectKeyTypes(build_types_, build_keys_)) {
  data_.reserve(build_types_.size());
  for (DataType t : build_types_) data_.emplace_back(t);
}

void JoinBridge::AddBuildPage(const PagePtr& page) {
  ACC_CHECK(!built_.load()) << "build page after hash table finalized";
  std::lock_guard<std::mutex> lock(mutex_);
  for (int c = 0; c < page->num_columns(); ++c) {
    data_[c].AppendRange(page->column(c), 0, page->num_rows());
  }
}

bool JoinBridge::BuildDriverFinished() {
  int remaining = --build_drivers_;
  ACC_CHECK(remaining >= 0) << "build driver underflow";
  if (remaining > 0) return false;
  // Last driver constructs the index: one batch pass assigns a dense key
  // id to every build row, then a counting sort groups each key's rows
  // contiguously (ascending, since the scatter scans forward).
  Stopwatch sw;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    int64_t rows = data_.empty() ? 0 : data_[0].size();
    std::vector<const Column*> keys;
    keys.reserve(build_keys_.size());
    for (int key : build_keys_) keys.push_back(&data_[key]);
    std::vector<int64_t> ids;
    table_.Reserve(rows);  // skip the doubling/rehash ladder
    table_.LookupOrInsert(keys, rows, &ids);
    const int64_t num_keys = table_.size();
    offsets_.assign(static_cast<size_t>(num_keys) + 1, 0);
    for (int64_t r = 0; r < rows; ++r) ++offsets_[ids[r] + 1];
    for (int64_t k = 0; k < num_keys; ++k) offsets_[k + 1] += offsets_[k];
    rows_.resize(static_cast<size_t>(rows));
    std::vector<int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (int64_t r = 0; r < rows; ++r) rows_[cursor[ids[r]]++] = r;
  }
  build_index_us_ = sw.ElapsedMicros();
  built_ = true;
  return true;
}

int64_t JoinBridge::build_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_.empty() ? 0 : data_[0].size();
}

void JoinBridge::Probe(const Page& probe, const std::vector<int>& probe_keys,
                       std::vector<int32_t>* probe_rows,
                       std::vector<int64_t>* build_rows) const {
  ACC_CHECK(built_.load()) << "probe before hash table built";
  // No lock needed: the table is immutable once built.
  table_.FindJoin(probe, probe_keys, offsets_.data(), rows_.data(),
                  probe_rows, build_rows);
}

Column JoinBridge::GatherBuild(int channel,
                               const std::vector<int64_t>& rows) const {
  return GatherBuild(channel, rows.data(), static_cast<int64_t>(rows.size()));
}

Column JoinBridge::GatherBuild(int channel, const int64_t* rows,
                               int64_t count) const {
  return data_[channel].Gather(rows, count);
}

}  // namespace accordion
