#include "exec/join_bridge.h"

#include "common/clock.h"
#include "common/logging.h"

namespace accordion {

JoinBridge::JoinBridge(std::vector<DataType> build_types,
                       std::vector<int> build_keys)
    : build_types_(std::move(build_types)), build_keys_(std::move(build_keys)) {
  data_.reserve(build_types_.size());
  for (DataType t : build_types_) data_.emplace_back(t);
}

void JoinBridge::AddBuildPage(const PagePtr& page) {
  ACC_CHECK(!built_.load()) << "build page after hash table finalized";
  std::lock_guard<std::mutex> lock(mutex_);
  for (int c = 0; c < page->num_columns(); ++c) {
    for (int64_t r = 0; r < page->num_rows(); ++r) {
      data_[c].AppendFrom(page->column(c), r);
    }
  }
}

bool JoinBridge::BuildDriverFinished() {
  int remaining = --build_drivers_;
  ACC_CHECK(remaining >= 0) << "build driver underflow";
  if (remaining > 0) return false;
  // Last driver constructs the index.
  Stopwatch sw;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    int64_t rows = data_.empty() ? 0 : data_[0].size();
    index_.reserve(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      uint64_t h = 0x8445D61A4E774912ULL;
      for (int key : build_keys_) h = data_[key].HashAt(r, h);
      index_[h].push_back(r);
    }
  }
  build_index_us_ = sw.ElapsedMicros();
  built_ = true;
  return true;
}

int64_t JoinBridge::build_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_.empty() ? 0 : data_[0].size();
}

bool JoinBridge::KeysEqualRow(const Page& probe,
                              const std::vector<int>& probe_keys,
                              int64_t probe_row, int64_t build_row) const {
  for (size_t k = 0; k < probe_keys.size(); ++k) {
    const Column& pc = probe.column(probe_keys[k]);
    const Column& bc = data_[build_keys_[k]];
    switch (bc.type()) {
      case DataType::kString:
        if (pc.StrAt(probe_row) != bc.StrAt(build_row)) return false;
        break;
      case DataType::kDouble:
        if (pc.DoubleAt(probe_row) != bc.DoubleAt(build_row)) return false;
        break;
      default:
        if (pc.IntAt(probe_row) != bc.IntAt(build_row)) return false;
        break;
    }
  }
  return true;
}

void JoinBridge::Probe(const Page& probe, const std::vector<int>& probe_keys,
                       std::vector<int32_t>* probe_rows,
                       std::vector<int64_t>* build_rows) const {
  ACC_CHECK(built_.load()) << "probe before hash table built";
  // No lock needed: the table is immutable once built.
  for (int64_t r = 0; r < probe.num_rows(); ++r) {
    uint64_t h = probe.HashRow(r, probe_keys);
    auto it = index_.find(h);
    if (it == index_.end()) continue;
    for (int64_t candidate : it->second) {
      if (KeysEqualRow(probe, probe_keys, r, candidate)) {
        probe_rows->push_back(static_cast<int32_t>(r));
        build_rows->push_back(candidate);
      }
    }
  }
}

Column JoinBridge::GatherBuild(int channel,
                               const std::vector<int64_t>& rows) const {
  const Column& src = data_[channel];
  Column out(src.type());
  out.Reserve(static_cast<int64_t>(rows.size()));
  for (int64_t r : rows) out.AppendFrom(src, r);
  return out;
}

}  // namespace accordion
