#include "exec/join_bridge.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/clock.h"
#include "common/logging.h"
#include "exec/task_context.h"

namespace accordion {

namespace {

const EngineConfig& ConfigOf(const TaskContext* ctx) {
  static const EngineConfig* kDefault = new EngineConfig();
  return ctx ? ctx->config() : *kDefault;
}

// Raw 64-bit key words of a fixed-width column: int-backed columns alias
// their buffer, doubles view their bit patterns (the same packing
// HashTable::PrepareBatch uses, so words hash and compare identically).
const int64_t* KeyWords(const Column& col, std::vector<int64_t>* storage) {
  if (col.type() != DataType::kDouble) return col.ints().data();
  const int64_t n = col.size();
  storage->resize(static_cast<size_t>(n));
  if (n > 0) std::memcpy(storage->data(), col.doubles().data(), n * 8);
  return storage->data();
}

// Builds the CSR match list (offsets/rows grouped by dense key id) from
// the per-row ids of a finished LookupOrInsert pass. `row_of(i)` maps the
// local row index to the row number stored in the list.
template <typename RowOf>
void BuildCsr(const std::vector<int64_t>& ids, int64_t num_keys,
              std::vector<int64_t>* offsets, std::vector<int64_t>* rows,
              RowOf row_of) {
  const int64_t n = static_cast<int64_t>(ids.size());
  offsets->assign(static_cast<size_t>(num_keys) + 1, 0);
  for (int64_t r = 0; r < n; ++r) ++(*offsets)[ids[r] + 1];
  for (int64_t k = 0; k < num_keys; ++k) (*offsets)[k + 1] += (*offsets)[k];
  rows->resize(static_cast<size_t>(n));
  std::vector<int64_t> cursor(offsets->begin(), offsets->end() - 1);
  for (int64_t r = 0; r < n; ++r) (*rows)[cursor[ids[r]]++] = row_of(r);
}

// All-NULL column of `n` rows (outer-join padding).
Column NullColumn(DataType type, int64_t n) {
  Column col(type);
  col.Reserve(n);
  for (int64_t i = 0; i < n; ++i) col.AppendNull();
  return col;
}

// True when any key channel of `page` is NULL at `row`.
bool RowHasNullKey(const Page& page, const std::vector<int>& keys,
                   int64_t row) {
  for (int ch : keys) {
    if (page.column(ch).IsNull(row)) return true;
  }
  return false;
}

}  // namespace

JoinBridge::JoinBridge(std::vector<DataType> build_types,
                       std::vector<int> build_keys, TaskContext* task_ctx,
                       JoinType join_type, std::vector<DataType> probe_types)
    : build_types_(std::move(build_types)),
      build_keys_(std::move(build_keys)),
      task_ctx_(task_ctx),
      join_type_(join_type),
      probe_types_(std::move(probe_types)) {
  data_.reserve(build_types_.size());
  for (DataType t : build_types_) data_.emplace_back(t);
}

JoinBridge::~JoinBridge() {
  // Return everything this bridge reported to the task accountant (index
  // memory, loaded drain chunks) so concurrent builds see real pressure.
  TrackBuildBytes(-tracked_bytes_);
}

bool JoinBridge::allow_simd() const {
  return ConfigOf(task_ctx_).join.probe != ProbePathMode::kScalar;
}

int64_t JoinBridge::budget_bytes() const {
  return task_ctx_ ? task_ctx_->build_budget_bytes() : 0;
}

void JoinBridge::TrackBuildBytes(int64_t delta) {
  tracked_bytes_ += delta;
  if (task_ctx_ != nullptr) task_ctx_->AddBuildBytes(delta);
}

void JoinBridge::RecordProbePath(bool simd) {
  if (task_ctx_ == nullptr) return;
  if (probe_path_recorded_.exchange(true)) return;
  task_ctx_->RecordProbePath(simd);
}

void JoinBridge::HashKeys(const std::vector<const Column*>& keys,
                          int64_t num_rows,
                          std::vector<uint64_t>* hashes) const {
  hashes->assign(static_cast<size_t>(num_rows), Page::kHashSeed);
  for (const Column* key : keys) key->HashInto(hashes);
}

void JoinBridge::NoteBuildNullKeys(const Page& page) {
  if (build_has_null_key_) return;
  for (int ch : build_keys_) {
    const Column& col = page.column(ch);
    if (!col.may_have_nulls()) continue;
    for (uint8_t v : col.validity()) {
      if (v == 0) {
        build_has_null_key_ = true;
        return;
      }
    }
  }
}

void JoinBridge::MarkBuildRows(const int64_t* rows, int64_t count) {
  std::atomic<uint64_t>* bits = build_matched_bits_.get();
  for (int64_t k = 0; k < count; ++k) {
    const uint64_t r = static_cast<uint64_t>(rows[k]);
    bits[r >> 6].fetch_or(uint64_t{1} << (r & 63), std::memory_order_relaxed);
  }
}

Status JoinBridge::WriteSpill(SpillFile* file, const Page& page) {
  const int64_t before = file->bytes_written();
  Status s = file->Append(page);
  if (task_ctx_ != nullptr) {
    task_ctx_->AddSpillBytesWritten(file->bytes_written() - before);
  }
  return s;
}

Status JoinBridge::AddBuildPage(const PagePtr& page) {
  ACC_CHECK(!built_.load()) << "build page after hash table finalized";
  std::lock_guard<std::mutex> lock(mutex_);
  total_build_rows_ += page->num_rows();
  NoteBuildNullKeys(*page);
  if (mode_ == Mode::kSpill) {
    if (!spill_status_.ok()) return spill_status_;
    std::vector<const Column*> keys;
    keys.reserve(build_keys_.size());
    for (int ch : build_keys_) keys.push_back(&page->column(ch));
    std::vector<uint64_t> hashes;
    HashKeys(keys, page->num_rows(), &hashes);
    std::vector<std::vector<int32_t>> selections;
    radix_->BuildSelections(hashes.data(), page->num_rows(), &selections);
    Status s = StageRowsLocked(&build_stages_, &build_files_, "build", *page,
                               selections);
    if (!s.ok()) spill_status_ = s;
    return s;
  }
  for (int c = 0; c < page->num_columns(); ++c) {
    data_[c].AppendRange(page->column(c), 0, page->num_rows());
  }
  TrackBuildBytes(page->ByteSize());
  const int64_t budget = budget_bytes();
  if (budget > 0 && tracked_bytes_ > budget) {
    Status s = StartSpillLocked();
    if (!s.ok()) {
      spill_status_ = s;
      return s;
    }
  }
  return Status::OK();
}

Status JoinBridge::StartSpillLocked() {
  const JoinConfig& jc = ConfigOf(task_ctx_).join;
  mode_ = Mode::kSpill;
  spilled_.store(true);
  radix_ = std::make_unique<RadixPartitioner>(jc.spill_partition_bits);
  const int64_t rows = data_.empty() ? 0 : data_[0].size();
  std::vector<const Column*> keys;
  keys.reserve(build_keys_.size());
  for (int ch : build_keys_) keys.push_back(&data_[ch]);
  std::vector<uint64_t> hashes;
  HashKeys(keys, rows, &hashes);
  std::vector<std::vector<int32_t>> selections;
  radix_->BuildSelections(hashes.data(), rows, &selections);
  // Scatter everything accumulated so far; from here on the build side is
  // pure grace — later pages go straight to partition files too.
  PagePtr accumulated = Page::Make(std::move(data_));
  data_.clear();
  Status s = StageRowsLocked(&build_stages_, &build_files_, "build",
                             *accumulated, selections);
  // The accumulated rows now live on disk (or in bounded staging buffers);
  // release their memory accounting.
  TrackBuildBytes(-tracked_bytes_);
  return s;
}

Status JoinBridge::StageRowsLocked(
    std::vector<Stage>* stages, std::vector<std::unique_ptr<SpillFile>>* files,
    const char* prefix, const Page& page,
    const std::vector<std::vector<int32_t>>& selections) {
  const MemoryConfig& mc = ConfigOf(task_ctx_).memory;
  const int num_parts = radix_->num_partitions();
  if (files->empty()) {
    files->reserve(num_parts);
    for (int p = 0; p < num_parts; ++p) {
      auto file = SpillFile::Create(mc.spill_dir, prefix, mc.spill_chunk_bytes);
      if (!file.ok()) return file.status();
      files->push_back(std::move(file).value());
    }
    if (task_ctx_ != nullptr) task_ctx_->AddSpillPartitions(num_parts);
  }
  if (stages->empty()) {
    stages->resize(num_parts);
    for (Stage& stage : *stages) {
      stage.cols.reserve(page.num_columns());
      for (int c = 0; c < page.num_columns(); ++c) {
        stage.cols.emplace_back(page.column(c).type());
      }
    }
  }
  const int64_t per_row =
      page.num_rows() > 0
          ? std::max<int64_t>(1, page.ByteSize() / page.num_rows())
          : 0;
  for (int p = 0; p < num_parts; ++p) {
    const std::vector<int32_t>& sel = selections[p];
    if (sel.empty()) continue;
    Stage& stage = (*stages)[p];
    for (int c = 0; c < page.num_columns(); ++c) {
      stage.cols[c].AppendGather(page.column(c), sel.data(),
                                 static_cast<int64_t>(sel.size()));
    }
    stage.bytes += per_row * static_cast<int64_t>(sel.size());
    if (stage.bytes >= mc.spill_chunk_bytes) {
      Status s = FlushStageLocked(&stage, (*files)[p].get());
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

Status JoinBridge::FlushStageLocked(Stage* stage, SpillFile* file) {
  if (stage->cols.empty() || stage->cols[0].size() == 0) {
    stage->bytes = 0;
    return Status::OK();
  }
  std::vector<DataType> types;
  types.reserve(stage->cols.size());
  for (const Column& col : stage->cols) types.push_back(col.type());
  PagePtr page = Page::Make(std::move(stage->cols));
  stage->cols.clear();
  for (DataType t : types) stage->cols.emplace_back(t);
  stage->bytes = 0;
  return WriteSpill(file, *page);
}

bool JoinBridge::BuildDriverFinished() {
  int remaining = --build_drivers_;
  ACC_CHECK(remaining >= 0) << "build driver underflow";
  if (remaining > 0) return false;
  // Last driver finalizes the index; which index depends on how far the
  // build climbed the decision ladder (flat / radix / spilled).
  Stopwatch sw;
  Status status;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (mode_ == Mode::kSpill) {
      status = FinishSpillBuildLocked();
      if (!status.ok()) spill_status_ = status;
    } else {
      const JoinConfig& jc = ConfigOf(task_ctx_).join;
      const int64_t rows = data_.empty() ? 0 : data_[0].size();
      std::vector<DataType> key_types =
          HashTable::SelectKeyTypes(build_types_, build_keys_);
      const bool word_eligible =
          key_types.size() == 1 && key_types[0] != DataType::kString;
      if (word_eligible && jc.radix_min_build_rows > 0 &&
          rows >= jc.radix_min_build_rows) {
        mode_ = Mode::kRadix;
        BuildRadixIndexLocked();
      } else {
        BuildFlatIndexLocked();
      }
      if (needs_build_drain() && rows > 0) {
        const int64_t words = (rows + 63) / 64;
        build_matched_bits_.reset(new std::atomic<uint64_t>[words]);
        for (int64_t w = 0; w < words; ++w) {
          build_matched_bits_[w].store(0, std::memory_order_relaxed);
        }
        TrackBuildBytes(words * 8);
      }
    }
  }
  build_index_us_ = sw.ElapsedMicros();
  if (!status.ok() && task_ctx_ != nullptr) task_ctx_->ReportFailure(status);
  built_.store(true);
  return true;
}

void JoinBridge::BuildFlatIndexLocked() {
  const int64_t rows = data_.empty() ? 0 : data_[0].size();
  auto part = std::make_unique<PartitionIndex>(
      HashTable::SelectKeyTypes(build_types_, build_keys_));
  std::vector<const Column*> keys;
  keys.reserve(build_keys_.size());
  for (int key : build_keys_) keys.push_back(&data_[key]);
  std::vector<int64_t> ids;
  part->table.Reserve(rows);  // skip the doubling/rehash ladder
  part->table.LookupOrInsert(keys, rows, &ids);
  BuildCsr(ids, part->table.size(), &part->offsets, &part->rows,
           [](int64_t r) { return r; });
  TrackBuildBytes(part->table.ByteSize() +
                  static_cast<int64_t>(part->offsets.size() +
                                       part->rows.size()) *
                      8);
  partitions_.push_back(std::move(part));
}

void JoinBridge::BuildRadixIndexLocked() {
  const JoinConfig& jc = ConfigOf(task_ctx_).join;
  const Column& key_col = data_[build_keys_[0]];
  const int64_t rows = key_col.size();
  std::vector<uint64_t> hashes;
  HashKeys({&key_col}, rows, &hashes);
  int bits = RadixPartitioner::ChooseBits(rows, jc.radix_partition_rows,
                                          jc.radix_max_bits);
  bits = std::max(bits, 1);
  radix_ = std::make_unique<RadixPartitioner>(bits);
  std::vector<std::vector<int32_t>> selections;
  radix_->BuildSelections(hashes.data(), rows, &selections);
  const std::vector<DataType> key_types =
      HashTable::SelectKeyTypes(build_types_, build_keys_);
  int64_t index_bytes = 0;
  partitions_.reserve(radix_->num_partitions());
  std::vector<uint64_t> part_hashes;
  std::vector<int64_t> ids;
  for (int p = 0; p < radix_->num_partitions(); ++p) {
    const std::vector<int32_t>& sel = selections[p];
    const int64_t n = static_cast<int64_t>(sel.size());
    auto part = std::make_unique<PartitionIndex>(key_types);
    Column part_keys(key_types[0]);
    part_keys.AppendGather(key_col, sel.data(), n);
    part_hashes.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) part_hashes[i] = hashes[sel[i]];
    part->table.Reserve(n);
    part->table.LookupOrInsertHashed({&part_keys}, n, part_hashes.data(),
                                     &ids);
    // rows_ hold GLOBAL build row numbers so GatherBuild works unchanged.
    BuildCsr(ids, part->table.size(), &part->offsets, &part->rows,
             [&sel](int64_t r) { return static_cast<int64_t>(sel[r]); });
    index_bytes +=
        part->table.ByteSize() +
        static_cast<int64_t>(part->offsets.size() + part->rows.size()) * 8;
    partitions_.push_back(std::move(part));
  }
  TrackBuildBytes(index_bytes);
}

Status JoinBridge::FinishSpillBuildLocked() {
  if (!spill_status_.ok()) return spill_status_;
  for (size_t p = 0; p < build_files_.size(); ++p) {
    Status s = FlushStageLocked(&build_stages_[p], build_files_[p].get());
    if (!s.ok()) return s;
    s = build_files_[p]->FinishWrite();
    if (!s.ok()) return s;
  }
  build_stages_.clear();
  return Status::OK();
}

int64_t JoinBridge::build_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_build_rows_;
}

int JoinBridge::num_partitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(partitions_.size());
}

Status JoinBridge::Probe(const Page& probe, const std::vector<int>& probe_keys,
                         std::vector<int32_t>* probe_rows,
                         std::vector<int64_t>* build_rows) {
  ACC_CHECK(built_.load()) << "probe before hash table built";
  // mode_ and the partition indexes are immutable once built_ is set, so
  // the flat/radix paths run lock-free and concurrently.
  const size_t pairs_before = build_rows->size();
  if (mode_ == Mode::kFlat) {
    const bool simd = allow_simd();
    const PartitionIndex& part = *partitions_[0];
    RecordProbePath(part.table.probe_path(simd) == HashTable::ProbePath::kSimd);
    part.table.FindJoinBatch(probe, probe_keys, part.offsets.data(),
                             part.rows.data(), probe_rows, build_rows, simd);
    if (build_matched_bits_ != nullptr) {
      MarkBuildRows(build_rows->data() + pairs_before,
                    static_cast<int64_t>(build_rows->size() - pairs_before));
    }
    return Status::OK();
  }
  if (mode_ == Mode::kRadix) {
    const int64_t n = probe.num_rows();
    if (n == 0) return Status::OK();
    const bool simd = allow_simd();
    const Column& key_col = probe.column(probe_keys[0]);
    thread_local std::vector<int64_t> word_storage;
    const int64_t* words = KeyWords(key_col, &word_storage);
    thread_local std::vector<uint64_t> hashes;
    hashes.resize(static_cast<size_t>(n));
    HashTable::HashWords(words, n, hashes.data(), simd);
    thread_local std::vector<std::vector<int32_t>> selections;
    radix_->BuildSelections(hashes.data(), n, &selections);
    if (key_col.may_have_nulls()) {
      // FindJoinHashed probes raw key words with no validity channel; a
      // NULL row's zeroed payload would match a genuine 0 key. NULL probe
      // keys match nothing, so drop them before the partition probes (all
      // NULLs share the sentinel hash, so only one partition has any).
      const uint8_t* valid = key_col.validity().data();
      for (auto& sel : selections) {
        sel.erase(std::remove_if(
                      sel.begin(), sel.end(),
                      [valid](int32_t r) { return valid[r] == 0; }),
                  sel.end());
      }
    }
    RecordProbePath(partitions_[0]->table.probe_path(simd) ==
                    HashTable::ProbePath::kSimd);
    thread_local std::vector<int64_t> part_words;
    thread_local std::vector<uint64_t> part_hashes;
    for (int p = 0; p < radix_->num_partitions(); ++p) {
      const std::vector<int32_t>& sel = selections[p];
      const int64_t np = static_cast<int64_t>(sel.size());
      if (np == 0) continue;
      part_words.resize(static_cast<size_t>(np));
      part_hashes.resize(static_cast<size_t>(np));
      for (int64_t i = 0; i < np; ++i) {
        part_words[i] = words[sel[i]];
        part_hashes[i] = hashes[sel[i]];
      }
      const PartitionIndex& part = *partitions_[p];
      part.table.FindJoinHashed(part_words.data(), part_hashes.data(), np,
                                part.offsets.data(), part.rows.data(),
                                sel.data(), probe_rows, build_rows, simd);
    }
    if (build_matched_bits_ != nullptr) {
      MarkBuildRows(build_rows->data() + pairs_before,
                    static_cast<int64_t>(build_rows->size() - pairs_before));
    }
    return Status::OK();
  }
  // Spill mode: scatter the probe page to partition files; matches stream
  // later from NextSpilledPage.
  std::lock_guard<std::mutex> lock(mutex_);
  if (!spill_status_.ok()) return spill_status_;
  const int64_t n = probe.num_rows();
  if (n == 0) return Status::OK();
  std::vector<const Column*> keys;
  keys.reserve(probe_keys.size());
  for (int ch : probe_keys) keys.push_back(&probe.column(ch));
  std::vector<uint64_t> hashes;
  HashKeys(keys, n, &hashes);
  std::vector<std::vector<int32_t>> selections;
  radix_->BuildSelections(hashes.data(), n, &selections);
  Status s =
      StageRowsLocked(&probe_stages_, &probe_files_, "probe", probe, selections);
  if (!s.ok()) spill_status_ = s;
  return s;
}

Column JoinBridge::GatherBuild(int channel,
                               const std::vector<int64_t>& rows) const {
  return GatherBuild(channel, rows.data(), static_cast<int64_t>(rows.size()));
}

Column JoinBridge::GatherBuild(int channel, const int64_t* rows,
                               int64_t count) const {
  return data_[channel].Gather(rows, count);
}

Column JoinBridge::GatherBuildNullable(int channel, const int64_t* rows,
                                       int64_t count) const {
  return data_[channel].GatherNullable(rows, count);
}

bool JoinBridge::ProbeDriverFinished() {
  int remaining = --probe_drivers_;
  ACC_CHECK(remaining >= 0) << "probe driver underflow";
  if (remaining > 0) return false;
  // In-memory right/full joins still owe their unmatched build rows.
  if (!spilled_.load()) return needs_build_drain();
  // Last probe driver becomes the drainer: seal the probe files and queue
  // the level-0 partition pairs. Errors surface from NextSpilledPage.
  std::lock_guard<std::mutex> lock(mutex_);
  if (spill_status_.ok()) {
    for (size_t p = 0; p < probe_files_.size(); ++p) {
      Status s = FlushStageLocked(&probe_stages_[p], probe_files_[p].get());
      if (s.ok()) s = probe_files_[p]->FinishWrite();
      if (!s.ok()) {
        spill_status_ = s;
        break;
      }
    }
    probe_stages_.clear();
  }
  for (size_t p = 0; p < build_files_.size(); ++p) {
    SpillPair pair;
    pair.build = std::move(build_files_[p]);
    if (p < probe_files_.size()) pair.probe = std::move(probe_files_[p]);
    pair.depth = 0;
    drain_queue_.push_back(std::move(pair));
  }
  build_files_.clear();
  probe_files_.clear();
  return true;
}

PagePtr JoinBridge::NextUnmatchedBuildPage(
    const std::vector<int>& build_output_channels) {
  ACC_CHECK(!probe_types_.empty())
      << "right/full join bridge needs probe types for null padding";
  const int64_t total = data_.empty() ? 0 : data_[0].size();
  const int64_t chunk = ConfigOf(task_ctx_).batch_rows * 4;
  std::vector<int64_t> rows;
  rows.reserve(static_cast<size_t>(chunk));
  const std::atomic<uint64_t>* bits = build_matched_bits_.get();
  while (unmatched_cursor_ < total &&
         static_cast<int64_t>(rows.size()) < chunk) {
    const uint64_t r = static_cast<uint64_t>(unmatched_cursor_++);
    if (bits != nullptr &&
        (bits[r >> 6].load(std::memory_order_relaxed) >> (r & 63)) & 1) {
      continue;
    }
    rows.push_back(static_cast<int64_t>(r));
  }
  if (rows.empty()) return nullptr;
  const int64_t n = static_cast<int64_t>(rows.size());
  std::vector<Column> cols;
  cols.reserve(probe_types_.size() + build_output_channels.size());
  for (DataType t : probe_types_) cols.push_back(NullColumn(t, n));
  for (int ch : build_output_channels) {
    cols.push_back(data_[ch].Gather(rows.data(), n));
  }
  return Page::Make(std::move(cols));
}

void JoinBridge::EmitFinalProbePage(
    const Page& page, const std::vector<uint8_t>& flags,
    const std::vector<int>& probe_keys,
    const std::vector<int>& build_output_channels) {
  const int64_t n = page.num_rows();
  switch (join_type_) {
    case JoinType::kInner:
    case JoinType::kRight:
      return;
    case JoinType::kLeft:
    case JoinType::kFull: {
      std::vector<int32_t> sel;
      for (int64_t r = 0; r < n; ++r) {
        if (flags[r] == 0) sel.push_back(static_cast<int32_t>(r));
      }
      if (sel.empty()) return;
      std::vector<Column> cols;
      cols.reserve(page.num_columns() + build_output_channels.size());
      for (int c = 0; c < page.num_columns(); ++c) {
        cols.push_back(page.column(c).Gather(sel));
      }
      const int64_t count = static_cast<int64_t>(sel.size());
      for (int ch : build_output_channels) {
        cols.push_back(NullColumn(build_types_[ch], count));
      }
      drain_ready_.push_back(Page::Make(std::move(cols)));
      return;
    }
    case JoinType::kLeftSemi:
    case JoinType::kLeftAnti:
    case JoinType::kNullAwareAnti: {
      // NOT IN against a build set with any NULL key compares to NULL for
      // every miss — nothing qualifies (the whole drain short-circuits).
      if (join_type_ == JoinType::kNullAwareAnti && build_has_null_key_) {
        return;
      }
      const bool want_matched = join_type_ == JoinType::kLeftSemi;
      std::vector<int32_t> sel;
      for (int64_t r = 0; r < n; ++r) {
        if ((flags[r] != 0) != want_matched) continue;
        if (join_type_ == JoinType::kNullAwareAnti &&
            RowHasNullKey(page, probe_keys, r)) {
          continue;  // NULL NOT IN (non-empty set) is NULL, not TRUE
        }
        sel.push_back(static_cast<int32_t>(r));
      }
      if (sel.empty()) return;
      drain_ready_.push_back(page.Select(sel));
      return;
    }
    case JoinType::kMark: {
      std::vector<Column> cols;
      cols.reserve(page.num_columns() + 1);
      for (int c = 0; c < page.num_columns(); ++c) {
        cols.push_back(Column(page.column(c)));
      }
      Column mark(DataType::kBool);
      mark.Reserve(n);
      for (int64_t r = 0; r < n; ++r) {
        if (flags[r] != 0) {
          mark.AppendInt(1);
        } else if (build_has_null_key_ ||
                   RowHasNullKey(page, probe_keys, r)) {
          mark.AppendNull();  // miss with a NULL on either side: unknown
        } else {
          mark.AppendInt(0);
        }
      }
      cols.push_back(std::move(mark));
      drain_ready_.push_back(Page::Make(std::move(cols)));
      return;
    }
  }
}

void JoinBridge::EmitUnmatchedChunkRows(
    const std::vector<int>& build_output_channels) {
  ACC_CHECK(!probe_types_.empty())
      << "right/full join bridge needs probe types for null padding";
  const int64_t rows = chunk_cols_.empty() ? 0 : chunk_cols_[0].size();
  const int64_t chunk = ConfigOf(task_ctx_).batch_rows * 4;
  std::vector<int64_t> sel;
  for (int64_t r = 0; r < rows; ++r) {
    if (chunk_matched_[r] != 0) continue;
    sel.push_back(r);
    if (static_cast<int64_t>(sel.size()) == chunk || r == rows - 1) {
      const int64_t n = static_cast<int64_t>(sel.size());
      std::vector<Column> cols;
      cols.reserve(probe_types_.size() + build_output_channels.size());
      for (DataType t : probe_types_) cols.push_back(NullColumn(t, n));
      for (int ch : build_output_channels) {
        cols.push_back(chunk_cols_[ch].Gather(sel.data(), n));
      }
      drain_ready_.push_back(Page::Make(std::move(cols)));
      sel.clear();
    }
  }
  if (!sel.empty()) {
    const int64_t n = static_cast<int64_t>(sel.size());
    std::vector<Column> cols;
    cols.reserve(probe_types_.size() + build_output_channels.size());
    for (DataType t : probe_types_) cols.push_back(NullColumn(t, n));
    for (int ch : build_output_channels) {
      cols.push_back(chunk_cols_[ch].Gather(sel.data(), n));
    }
    drain_ready_.push_back(Page::Make(std::move(cols)));
  }
}

PagePtr JoinBridge::StreamSidePage(
    const Page& page, bool build_side, const std::vector<int>& probe_keys,
    const std::vector<int>& build_output_channels) {
  const int64_t n = page.num_rows();
  if (build_side) {
    // Probe side of this partition empty: every build row is unmatched
    // (right/full only reach here).
    ACC_CHECK(!probe_types_.empty())
        << "right/full join bridge needs probe types for null padding";
    std::vector<Column> cols;
    cols.reserve(probe_types_.size() + build_output_channels.size());
    for (DataType t : probe_types_) cols.push_back(NullColumn(t, n));
    for (int ch : build_output_channels) {
      cols.push_back(Column(page.column(ch)));
    }
    return Page::Make(std::move(cols));
  }
  // Build side of this partition empty: every probe row is unmatched.
  std::vector<uint8_t> flags(static_cast<size_t>(n), 0);
  const size_t ready_before = drain_ready_.size();
  EmitFinalProbePage(page, flags, probe_keys, build_output_channels);
  if (drain_ready_.size() == ready_before) return nullptr;
  PagePtr out = std::move(drain_ready_.back());
  drain_ready_.pop_back();
  return out;
}

Result<PagePtr> JoinBridge::NextSpilledPage(
    const std::vector<int>& probe_keys,
    const std::vector<int>& build_output_channels) {
  if (!spilled_.load()) {
    // In-memory right/full drain: only the unmatched build rows remain.
    ACC_CHECK(needs_build_drain()) << "drain on an in-memory inner-side join";
    return NextUnmatchedBuildPage(build_output_channels);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!spill_status_.ok()) return spill_status_;
  }
  const JoinConfig& jc = ConfigOf(task_ctx_).join;
  while (true) {
    // 0. Serve variant pages produced while pair-joining.
    if (!drain_ready_.empty()) {
      PagePtr out = std::move(drain_ready_.front());
      drain_ready_.pop_front();
      return out;
    }
    // 1. Emit pending matches of the current probe page in bounded chunks.
    if (drain_probe_page_ != nullptr) {
      if (emit_offset_ < static_cast<int64_t>(match_probe_.size())) {
        return DrainEmit(*drain_probe_page_, build_output_channels);
      }
      drain_probe_page_ = nullptr;
    }
    // 2. Stream a single-sided partition pair (the other side empty).
    if (stream_active_) {
      SpillFile* src =
          stream_build_side_ ? stream_pair_.build.get() : stream_pair_.probe.get();
      Result<PagePtr> next = src->Next();
      if (!next.ok()) return next.status();
      PagePtr page = std::move(next).value();
      if (page == nullptr) {
        stream_active_ = false;
        stream_pair_ = SpillPair();
        continue;
      }
      PagePtr out = StreamSidePage(*page, stream_build_side_, probe_keys,
                                   build_output_channels);
      if (out == nullptr) continue;
      return out;
    }
    // 3. Advance within the active partition pair.
    if (drain_active_) {
      Result<PagePtr> next = drain_pair_.probe->Next();
      if (!next.ok()) return next.status();
      PagePtr page = std::move(next).value();
      if (page != nullptr) {
        const int64_t ordinal = probe_page_ordinal_++;
        match_probe_.clear();
        match_build_.clear();
        chunk_index_->table.FindJoinBatch(
            *page, probe_keys, chunk_index_->offsets.data(),
            chunk_index_->rows.data(), &match_probe_, &match_build_,
            allow_simd());
        if (tracks_probe_matches()) {
          if (ordinal >= static_cast<int64_t>(pair_probe_matched_.size())) {
            pair_probe_matched_.resize(static_cast<size_t>(ordinal) + 1);
          }
          std::vector<uint8_t>& flags = pair_probe_matched_[ordinal];
          if (flags.empty()) {
            flags.assign(static_cast<size_t>(page->num_rows()), 0);
          }
          for (int32_t r : match_probe_) flags[r] = 1;
          if (drain_build_exhausted_) {
            // Last build chunk: this page's accumulated flags are final.
            EmitFinalProbePage(*page, flags, probe_keys,
                               build_output_channels);
          }
        }
        if (needs_build_drain()) {
          for (int64_t b : match_build_) chunk_matched_[b] = 1;
        }
        if (emits_pairs() && !match_probe_.empty()) {
          drain_probe_page_ = std::move(page);
          emit_offset_ = 0;
        }
        continue;
      }
      // Probe stream exhausted for this chunk: the chunk's matched set is
      // complete, so right/full can emit its unmatched rows now.
      if (needs_build_drain()) {
        EmitUnmatchedChunkRows(build_output_channels);
      }
      if (!drain_build_exhausted_) {
        // More build chunks remain: rewind the probe file and join the
        // next chunk against the full probe stream (multi-pass fallback
        // for partitions that cannot recurse further).
        Status s = drain_pair_.probe->Rewind();
        if (!s.ok()) return s;
        probe_page_ordinal_ = 0;
        s = DrainLoadChunk();
        if (!s.ok()) return s;
        continue;
      }
      // Pair exhausted: release the chunk and unlink both files.
      TrackBuildBytes(-chunk_tracked_bytes_);
      chunk_tracked_bytes_ = 0;
      chunk_index_.reset();
      chunk_cols_.clear();
      drain_pair_ = SpillPair();
      drain_active_ = false;
      pair_probe_matched_.clear();
      probe_page_ordinal_ = 0;
      continue;
    }
    // 4. Open the next partition pair.
    if (drain_queue_.empty()) return PagePtr(nullptr);
    SpillPair pair = std::move(drain_queue_.front());
    drain_queue_.pop_front();
    const bool probe_empty =
        pair.probe == nullptr || pair.probe->pages_written() == 0;
    const bool build_empty = pair.build->pages_written() == 0;
    if (probe_empty && build_empty) continue;
    if (build_empty) {
      // Every probe row of this partition is unmatched; left/anti/mark
      // variants still owe output for them, the rest skip the pair.
      const bool emits_unmatched_probe =
          join_type_ == JoinType::kLeft || join_type_ == JoinType::kFull ||
          join_type_ == JoinType::kLeftAnti ||
          join_type_ == JoinType::kNullAwareAnti ||
          join_type_ == JoinType::kMark;
      if (!emits_unmatched_probe) continue;
      if (join_type_ == JoinType::kNullAwareAnti && build_has_null_key_) {
        continue;  // globally poisoned: no row qualifies anywhere
      }
      stream_pair_ = std::move(pair);
      stream_active_ = true;
      stream_build_side_ = false;
      continue;
    }
    if (probe_empty) {
      // Every build row of this partition is unmatched.
      if (!needs_build_drain()) continue;
      stream_pair_ = std::move(pair);
      stream_active_ = true;
      stream_build_side_ = true;
      continue;
    }
    const int64_t budget = budget_bytes();
    const bool can_recurse =
        pair.depth < jc.max_spill_recursion &&
        static_cast<int64_t>(radix_->bits()) * (pair.depth + 2) <= 60;
    if (budget > 0 && pair.build->bytes_written() > budget && can_recurse) {
      // Skewed partition: split both files by the next lower hash bits.
      Status s = DrainRepartition(std::move(pair), probe_keys);
      if (!s.ok()) return s;
      continue;
    }
    drain_pair_ = std::move(pair);
    drain_active_ = true;
    drain_build_exhausted_ = false;
    probe_page_ordinal_ = 0;
    pair_probe_matched_.clear();
    Status s = DrainLoadChunk();
    if (!s.ok()) return s;
  }
}

Status JoinBridge::DrainLoadChunk() {
  TrackBuildBytes(-chunk_tracked_bytes_);
  chunk_tracked_bytes_ = 0;
  chunk_cols_.clear();
  chunk_cols_.reserve(build_types_.size());
  for (DataType t : build_types_) chunk_cols_.emplace_back(t);
  const int64_t budget = budget_bytes();
  const int64_t limit =
      budget > 0 ? budget : std::numeric_limits<int64_t>::max();
  int64_t bytes = 0;
  while (bytes < limit) {
    Result<PagePtr> next = drain_pair_.build->Next();
    if (!next.ok()) return next.status();
    PagePtr page = std::move(next).value();
    if (page == nullptr) {
      drain_build_exhausted_ = true;
      break;
    }
    for (int c = 0; c < page->num_columns(); ++c) {
      chunk_cols_[c].AppendRange(page->column(c), 0, page->num_rows());
    }
    bytes += page->ByteSize();
  }
  const int64_t rows = chunk_cols_.empty() ? 0 : chunk_cols_[0].size();
  if (needs_build_drain()) chunk_matched_.assign(static_cast<size_t>(rows), 0);
  chunk_index_ = std::make_unique<PartitionIndex>(
      HashTable::SelectKeyTypes(build_types_, build_keys_));
  std::vector<const Column*> keys;
  keys.reserve(build_keys_.size());
  for (int key : build_keys_) keys.push_back(&chunk_cols_[key]);
  std::vector<int64_t> ids;
  chunk_index_->table.Reserve(rows);
  chunk_index_->table.LookupOrInsert(keys, rows, &ids);
  // rows_ here are chunk-local: DrainEmit gathers from chunk_cols_.
  BuildCsr(ids, chunk_index_->table.size(), &chunk_index_->offsets,
           &chunk_index_->rows, [](int64_t r) { return r; });
  chunk_tracked_bytes_ =
      bytes + chunk_index_->table.ByteSize() +
      static_cast<int64_t>(chunk_index_->offsets.size() +
                           chunk_index_->rows.size()) *
          8;
  TrackBuildBytes(chunk_tracked_bytes_);
  RecordProbePath(chunk_index_->table.probe_path(allow_simd()) ==
                  HashTable::ProbePath::kSimd);
  return Status::OK();
}

Status JoinBridge::DrainRepartition(SpillPair pair,
                                    const std::vector<int>& probe_keys) {
  const MemoryConfig& mc = ConfigOf(task_ctx_).memory;
  const int bits = radix_->bits();
  const int num_parts = 1 << bits;
  const int level = pair.depth + 1;
  // Level d uses hash bits [64 - bits*(d+1), 64 - bits*d): disjoint from
  // every ancestor level, so sub-partitions stay consistent with the
  // original scatter.
  const int shift = 64 - bits * (level + 1);
  std::vector<SpillPair> subs(static_cast<size_t>(num_parts));
  for (int p = 0; p < num_parts; ++p) {
    auto build = SpillFile::Create(mc.spill_dir, "build", mc.spill_chunk_bytes);
    if (!build.ok()) return build.status();
    auto probe = SpillFile::Create(mc.spill_dir, "probe", mc.spill_chunk_bytes);
    if (!probe.ok()) return probe.status();
    subs[p].build = std::move(build).value();
    subs[p].probe = std::move(probe).value();
    subs[p].depth = level;
  }
  if (task_ctx_ != nullptr) task_ctx_->AddSpillPartitions(num_parts);
  auto scatter = [&](SpillFile* src, const std::vector<int>& key_channels,
                     bool build_side) -> Status {
    std::vector<uint64_t> hashes;
    std::vector<std::vector<int32_t>> selections(
        static_cast<size_t>(num_parts));
    while (true) {
      Result<PagePtr> next = src->Next();
      if (!next.ok()) return next.status();
      PagePtr page = std::move(next).value();
      if (page == nullptr) break;
      std::vector<const Column*> keys;
      keys.reserve(key_channels.size());
      for (int ch : key_channels) keys.push_back(&page->column(ch));
      HashKeys(keys, page->num_rows(), &hashes);
      for (auto& sel : selections) sel.clear();
      for (int64_t i = 0; i < page->num_rows(); ++i) {
        selections[(hashes[i] >> shift) & (num_parts - 1)].push_back(
            static_cast<int32_t>(i));
      }
      for (int p = 0; p < num_parts; ++p) {
        if (selections[p].empty()) continue;
        PagePtr part_page = GatherSelection(*page, selections[p]);
        Status s = WriteSpill(
            build_side ? subs[p].build.get() : subs[p].probe.get(),
            *part_page);
        if (!s.ok()) return s;
      }
    }
    for (int p = 0; p < num_parts; ++p) {
      Status s = build_side ? subs[p].build->FinishWrite()
                            : subs[p].probe->FinishWrite();
      if (!s.ok()) return s;
    }
    return Status::OK();
  };
  Status s = scatter(pair.build.get(), build_keys_, /*build_side=*/true);
  if (!s.ok()) return s;
  s = scatter(pair.probe.get(), probe_keys, /*build_side=*/false);
  if (!s.ok()) return s;
  for (SpillPair& sub : subs) drain_queue_.push_back(std::move(sub));
  return Status::OK();
}

Result<PagePtr> JoinBridge::DrainEmit(
    const Page& probe_page, const std::vector<int>& build_output_channels) {
  const int64_t chunk = ConfigOf(task_ctx_).batch_rows * 4;
  const int64_t total = static_cast<int64_t>(match_probe_.size());
  const int64_t count = std::min(chunk, total - emit_offset_);
  std::vector<Column> cols;
  cols.reserve(probe_page.num_columns() + build_output_channels.size());
  for (int c = 0; c < probe_page.num_columns(); ++c) {
    cols.push_back(
        probe_page.column(c).Gather(match_probe_.data() + emit_offset_, count));
  }
  for (int ch : build_output_channels) {
    cols.push_back(
        chunk_cols_[ch].Gather(match_build_.data() + emit_offset_, count));
  }
  emit_offset_ += count;
  return Page::Make(std::move(cols));
}

}  // namespace accordion
