#ifndef ACCORDION_EXEC_HASH_TABLE_H_
#define ACCORDION_EXEC_HASH_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "vector/page.h"

namespace accordion {

/// Flat open-addressing hash table shared by hash aggregation and the join
/// bridge. It maps key tuples (one or more columns) to dense, first-seen
/// ids in [0, size()).
///
/// Design:
///   - One contiguous slot array `{hash, id}` with linear probing and
///     power-of-two capacity; the table grows 2x when it passes ~0.7 load.
///     Growth rehashes slots only — ids and canonical key storage are
///     stable, so consumers can index side arrays (accumulator states,
///     join chain heads) by id across resizes.
///   - Fixed-width fast path: when every key column is 8-byte backed
///     (int64/date/bool/double), keys are packed as raw int64 words,
///     `num_key_columns` per id, in one contiguous vector. Equality is a
///     word compare; no per-row allocation anywhere.
///   - Serialized fallback: when any key column is a string, the key tuple
///     is length-prefix serialized into a shared byte arena and the table
///     stores (offset, length) spans. Batches serialize into one reused
///     scratch buffer — again no per-row allocation.
///   - Batch-at-a-time API: callers hash a whole page with Page::HashRows
///     (column-at-a-time), then resolve every row to an id in one pass.
///     `LookupOrInsert` assigns ids to unseen keys (aggregation, join
///     build); `Find` is const + thread-safe on the frozen table and
///     returns -1 for misses (join probe).
///
/// Key equality is canonical bit-pattern equality (doubles compare by
/// their bits, so NaN == NaN and +0.0 != -0.0). Group-by has always
/// behaved this way (the seed serialized key bytes); joins now match it
/// instead of IEEE value compare — acceptable for TPC-H's NaN-free key
/// columns, and it is what makes exact-match probing possible without
/// re-verifying candidates.
///
/// NULL keys are first-class *group* keys: a NULL key tuple equals itself
/// and gets its own dense id (SQL GROUP BY semantics — all NULLs form one
/// group, distinct from 0 and from ""). The encoding distinguishes NULL
/// from any payload: the multi-column fixed path appends a null-mask word
/// per key tuple, the serialized path prefixes every value with a
/// validity byte, and the single-word path routes NULLs to a dedicated
/// id outside the slot array. SQL join equality (NULL never matches
/// NULL) lives in the join probes: FindJoin/FindJoinBatch resolve any
/// probe row with a NULL key to -1 (miss) in every layout, so NULL-keyed
/// build rows keep their CSR spans but are simply never reached — which
/// is exactly what right/full outer joins need to emit them as unmatched.
///
/// The canonical key storage doubles as the group-by key columns:
/// AppendKeys re-materializes keys for an id range straight into output
/// columns, so aggregation no longer keeps a Value vector per group.
class HashTable {
 public:
  /// Probe kernel used by FindJoinBatch/FindJoinHashed.
  enum class ProbePath { kScalar, kSimd };

  explicit HashTable(std::vector<DataType> key_types);

  /// True when the CPU has AVX2 (cached runtime check).
  static bool SimdSupported();

  /// Selects `types[ch]` for each channel — the key-type derivation
  /// shared by the aggregation and join consumers of this table.
  static std::vector<DataType> SelectKeyTypes(
      const std::vector<DataType>& types, const std::vector<int>& channels) {
    std::vector<DataType> out;
    out.reserve(channels.size());
    for (int ch : channels) out.push_back(types[ch]);
    return out;
  }

  int64_t size() const { return num_keys_; }
  bool empty() const { return num_keys_ == 0; }
  const std::vector<DataType>& key_types() const { return key_types_; }

  /// Pre-sizes the slot array for `expected_keys` distinct keys, skipping
  /// the doubling/rehash ladder (join build knows its row count up front).
  void Reserve(int64_t expected_keys);

  /// Resolves every row of `page` (keyed by `channels`) to a dense id,
  /// assigning the next id to each unseen key. `ids` is resized to
  /// page.num_rows(). Channels must match key_types() in order.
  void LookupOrInsert(const Page& page, const std::vector<int>& channels,
                      std::vector<int64_t>* ids);

  /// Same over raw columns (the join build side accumulates Columns, not
  /// Pages). `keys[k]` is the k-th key column; all must have `num_rows`.
  void LookupOrInsert(const std::vector<const Column*>& keys, int64_t num_rows,
                      std::vector<int64_t>* ids);

  /// LookupOrInsert with precomputed row hashes (must equal what
  /// Page::HashRows produces over the key columns). Callers that already
  /// hashed the batch — radix-partitioned aggregation hashes once to pick
  /// partitions — skip the second hash pass.
  void LookupOrInsertHashed(const std::vector<const Column*>& keys,
                            int64_t num_rows, const uint64_t* hashes,
                            std::vector<int64_t>* ids);

  /// Read-only batch probe: `(*ids)[row]` is the id of the matching key or
  /// -1. Thread-safe once the table is no longer being inserted into.
  void Find(const Page& page, const std::vector<int>& channels,
            std::vector<int64_t>* ids) const;

  /// Fused join probe: for every row of `page` whose key is present with
  /// id `id`, appends one (row, spans_rows[j]) pair per j in
  /// [span_offsets[id], span_offsets[id+1]). One pass — no intermediate
  /// id vector between the table lookup and the match expansion.
  /// Thread-safe like Find.
  void FindJoin(const Page& page, const std::vector<int>& channels,
                const int64_t* span_offsets, const int64_t* span_rows,
                std::vector<int32_t>* probe_rows,
                std::vector<int64_t>* build_rows) const;

  /// Batched join probe: resolves the whole page to ids first (AVX2
  /// vectorized Mix64 + gathered slot compares for single fixed-width
  /// keys, scalar otherwise), then sizes the output arrays once from the
  /// CSR span lengths and fills match pairs with raw stores — no per-row
  /// push_back capacity checks. Output and match order are identical to
  /// FindJoin. `allow_simd` false forces the scalar kernel (config knob,
  /// tests, benches). Thread-safe like Find.
  void FindJoinBatch(const Page& page, const std::vector<int>& channels,
                     const int64_t* span_offsets, const int64_t* span_rows,
                     std::vector<int32_t>* probe_rows,
                     std::vector<int64_t>* build_rows,
                     bool allow_simd = true) const;

  /// Word-mode probe over pre-gathered key words and their hashes (the
  /// radix-partitioned and spill join paths hash once to pick partitions
  /// and probe partition tables with gathered subsets). `row_map` maps
  /// local row i to the probe-page row written to `probe_rows` (nullptr:
  /// identity). Requires a single fixed-width key column.
  void FindJoinHashed(const int64_t* words, const uint64_t* hashes, int64_t n,
                      const int64_t* span_offsets, const int64_t* span_rows,
                      const int32_t* row_map,
                      std::vector<int32_t>* probe_rows,
                      std::vector<int64_t>* build_rows,
                      bool allow_simd = true) const;

  /// The kernel FindJoinBatch will use for this table's key layout.
  ProbePath probe_path(bool allow_simd = true) const {
    return (word_mode_ && allow_simd && SimdSupported()) ? ProbePath::kSimd
                                                         : ProbePath::kScalar;
  }

  /// Mix64(word ^ Page::kHashSeed) for a batch — bit-identical to
  /// Column::HashInto over one integer column; AVX2 when available.
  static void HashWords(const int64_t* words, int64_t n, uint64_t* hashes,
                        bool allow_simd = true);

  /// Appends the canonical key values of ids [begin, end) to `out`:
  /// key column k is appended to (*out)[k]. Used to emit group-by keys
  /// columnar.
  void AppendKeys(int64_t begin, int64_t end, std::vector<Column>* out) const;

  /// Drops all keys but keeps slot capacity (partial-agg flush cycles).
  void Clear();

  /// Approximate heap footprint (slots + canonical keys), for accounting.
  int64_t ByteSize() const;

 private:
  struct Slot {
    /// Generic mode: the key's 64-bit hash. Single fixed-width-key mode
    /// (`word_mode_`): the key word itself, so a probe resolves with one
    /// slot access and no canonical-key load; the hash is recomputed from
    /// the word when the table grows.
    uint64_t tag = 0;
    int64_t id = kEmptyId;
  };
  static constexpr int64_t kEmptyId = -1;
  static constexpr int64_t kInitialCapacity = 1024;

  // Reused per-batch scratch, bundled so the const Find path can stack-
  // allocate its own while LookupOrInsert reuses the member instance.
  struct Scratch {
    std::vector<uint64_t> hashes;
    // Points at `hashes`, or at caller-provided precomputed hashes.
    const uint64_t* hashes_data = nullptr;
    std::vector<int64_t> words;    // fixed path: packed keys, row-major
    // Points at `words`, or straight at the key column's int64 buffer for
    // the dominant single-integer-key case (no packing pass at all).
    const int64_t* words_data = nullptr;
    // Per-row key-tuple validity (0 = at least one NULL key column), or
    // nullptr when all key columns are all-valid. Word mode aliases the
    // key column's own validity buffer; the other layouts fill row_valid
    // while packing. Only the join probes consult it — group lookups
    // treat NULL tuples as ordinary keys.
    const uint8_t* valid_data = nullptr;
    std::vector<uint8_t> row_valid;  // backing store for the above
    std::string bytes;             // fallback: serialized keys
    std::vector<int64_t> offsets;  // fallback: per-row offsets into bytes
  };

  /// `external_hashes` non-null skips hash computation and aliases it.
  void PrepareBatch(const std::vector<const Column*>& keys, int64_t num_rows,
                    Scratch* scratch,
                    const uint64_t* external_hashes = nullptr) const;
  void LookupBatch(const Scratch& scratch, int64_t num_rows,
                   std::vector<int64_t>* ids);
  void FindBatch(const Scratch& scratch, int64_t num_rows,
                 std::vector<int64_t>* ids) const;
  /// Word-mode id resolution into a raw array, scalar or AVX2.
  void FindIds(const int64_t* words, const uint64_t* hashes, int64_t n,
               int64_t* ids, bool use_simd) const;
  bool KeyEquals(int64_t id, const Scratch& scratch, int64_t row) const;
  void InsertKey(const Scratch& scratch, int64_t row);
  void Grow();

  std::vector<DataType> key_types_;
  bool fixed_width_;  // all key columns 8-byte backed
  bool word_mode_;    // exactly one fixed-width key column
  int num_key_cols_;
  // Words per key tuple in fixed_keys_: num_key_cols_ in word mode, plus
  // one trailing null-mask word (bit c = key column c is NULL) otherwise.
  int fixed_stride_;
  // Word mode: dense id of the NULL-key group (-1 until a NULL key is
  // inserted). Lives outside the slot array — the slot tag is the raw key
  // word, which cannot distinguish NULL from a genuine 0.
  int64_t null_group_id_ = -1;

  std::vector<Slot> slots_;
  uint64_t mask_ = 0;  // capacity - 1; capacity == slots_.size()
  int64_t num_keys_ = 0;

  // Canonical key storage, indexed by id.
  std::vector<int64_t> fixed_keys_;           // fixed_stride_ words per id
  std::string arena_;                         // serialized fallback keys
  std::vector<std::pair<int64_t, int64_t>> spans_;  // (offset, length) per id

  Scratch scratch_;  // reused by the mutating LookupOrInsert path
};

}  // namespace accordion

#endif  // ACCORDION_EXEC_HASH_TABLE_H_
