#ifndef ACCORDION_EXEC_PIPELINE_H_
#define ACCORDION_EXEC_PIPELINE_H_

#include <functional>
#include <string>
#include <vector>

#include "exec/operators.h"
#include "plan/fragment.h"

namespace accordion {

/// One pipeline of a task: an ordered list of operator factories, each of
/// which can instantiate any number of physical operators — the
/// class/object relationship from the paper (§2, Fig. 6).
struct Pipeline {
  int id = 0;
  std::vector<OperatorFactoryPtr> factories;

  /// False when the pipeline contains stateful final operators (final
  /// aggregation / final TopN) whose parallelism is pinned to 1 (§4.1).
  bool tunable = true;

  /// True if the last factory is the task output (the "task output
  /// pipeline" of Fig. 12a).
  bool is_output = false;

  std::string ToString() const;
};

/// Wiring surface the task offers to the pipeline builder: creation of the
/// shared structures referenced by operator factories.
struct PipelineBuildContext {
  std::function<ExchangeClient*(int source_stage_id)> exchange_client;
  std::function<LocalExchange*(int node_id)> local_exchange;
  std::function<JoinBridge*(int node_id, std::vector<DataType> build_types,
                            std::vector<int> build_keys, JoinType join_type,
                            std::vector<DataType> probe_types)>
      join_bridge;
  OutputBuffer* output_buffer = nullptr;
  NextSplitFn next_split;
  OpenSplitFn open_split;
};

/// Converts a fragment into its pipelines by splitting at the pipeline
/// breakers (LocalExchange -> sink+source, HashJoin -> build+probe) and
/// appending the task output operator to the main pipeline (paper Fig. 6).
/// The main (output) pipeline is always last.
std::vector<Pipeline> BuildPipelines(const PlanFragment& fragment,
                                     PipelineBuildContext* ctx);

}  // namespace accordion

#endif  // ACCORDION_EXEC_PIPELINE_H_
