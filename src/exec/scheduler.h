#ifndef ACCORDION_EXEC_SCHEDULER_H_
#define ACCORDION_EXEC_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace accordion {

struct EngineConfig;

/// A resumable unit of work driven by the shared CPU pool — a driver, an
/// exchange fetcher or a shuffle executor. The pool calls RunQuantum
/// repeatedly; the unit does up to `quantum_us` of work and yields instead
/// of blocking, so a fixed-size pool can multiplex every driver of every
/// concurrent query (morsel-driven scheduling, Leis et al.).
class Schedulable {
 public:
  struct Quantum {
    enum class State {
      kRunnable,  // more work available right now — requeue
      kWaiting,   // nothing to do before `resume_at_us` (backpressure,
                  // pacing, idle upstream); a Wake() resumes earlier
      kFinished,  // unit completed; the scheduler drops it
    };
    State state = State::kRunnable;
    int64_t resume_at_us = 0;  // absolute NowMicros time, kWaiting only

    static Quantum Runnable() { return Quantum{State::kRunnable, 0}; }
    static Quantum Waiting(int64_t resume_at_us) {
      return Quantum{State::kWaiting, resume_at_us};
    }
    static Quantum Finished() { return Quantum{State::kFinished, 0}; }
  };

  virtual ~Schedulable() = default;

  /// Runs up to `quantum_us` of work. Must not block on locks held across
  /// quanta, other units' progress, or simulated latency — yield instead.
  virtual Quantum RunQuantum(int64_t quantum_us) = 0;
};

/// Non-owning handle for units whose lifetime is managed by their task
/// structures (drivers, exchange clients, shuffle buffers). The owner must
/// Retire() the unit before destroying it.
inline std::shared_ptr<Schedulable> NonOwning(Schedulable* unit) {
  return std::shared_ptr<Schedulable>(unit, [](Schedulable*) {});
}

/// The shared, fixed-size CPU pool with weighted fair queueing across
/// queries (paper §5.4's latency-constraint substrate; ROADMAP open item
/// 1). Every unit belongs to a group — the query id — and each group
/// accumulates virtual runtime `elapsed / weight` as its units run; the
/// pool always serves the runnable group with the smallest virtual
/// runtime, so CPU time divides between queries proportionally to their
/// weights regardless of how many units each query enqueues. The
/// coordinator maps DOP changes onto group weights, which is what turns
/// the paper's thread-count tuning into a queue-share change.
///
/// Waiting units sit on a timer heap and cost nothing; Wake() resumes one
/// early (new input arrived). Retire() synchronously removes a unit,
/// blocking until any in-flight quantum returns — the teardown primitive
/// replacing thread joins.
class MorselScheduler {
 public:
  struct Options {
    /// Pool size; 0 means hardware_concurrency() (4 if that reports 0).
    int num_threads = 0;
    /// Target wall time of one quantum before a unit must requeue.
    int64_t quantum_us = 1000;
  };

  MorselScheduler() : MorselScheduler(Options()) {}
  explicit MorselScheduler(Options options);
  ~MorselScheduler();

  MorselScheduler(const MorselScheduler&) = delete;
  MorselScheduler& operator=(const MorselScheduler&) = delete;

  /// Process-wide default pool, used when EngineConfig::scheduler is
  /// null. Never destroyed (it must outlive all static-duration users).
  static MorselScheduler* Default();

  /// Adds `unit` to `group`'s run queue. The scheduler keeps the
  /// shared_ptr until the unit finishes or is retired; owners that manage
  /// lifetime themselves pass NonOwning(unit) and must Retire().
  void Enqueue(const std::string& group, std::shared_ptr<Schedulable> unit);

  /// Sets `group`'s fair-queueing weight (default 1.0; minimum clamped to
  /// a small positive value). Takes effect from the next quantum.
  void SetGroupWeight(const std::string& group, double weight);

  /// Drops `group`'s weight record once its units are gone (query end).
  void ClearGroup(const std::string& group);

  /// Moves a kWaiting unit back to its run queue immediately (e.g. new
  /// input arrived before its timer). No-op for running/queued/unknown.
  void Wake(Schedulable* unit);

  /// Removes `unit` from the scheduler, blocking until an in-flight
  /// quantum (if any) returns. After Retire the scheduler holds no
  /// reference to the unit. No-op if the unit already finished. Must not
  /// be called from a pool thread — that would self-deadlock.
  void Retire(Schedulable* unit);

  int num_threads() const { return static_cast<int>(threads_.size()); }
  int64_t quantum_us() const { return quantum_us_; }

  /// Units currently registered (queued + waiting + running). Test hook.
  int num_units() const;
  /// Groups currently known (with units or an explicit weight). Test hook.
  int num_groups() const;

 private:
  enum class UnitState { kQueued, kRunning, kWaiting };

  struct Unit {
    std::shared_ptr<Schedulable> ref;
    std::string group;
    UnitState state = UnitState::kQueued;
    /// Invalidates stale timer-heap entries after a Wake or state change.
    int64_t wait_epoch = 0;
    bool retire_requested = false;
  };

  struct Group {
    double weight = 1.0;
    double vruntime = 0;
    int members = 0;  // units registered under this group
    /// Weight was set explicitly; keep the (possibly empty) group until
    /// ClearGroup instead of dropping the weight with its last unit.
    bool pinned = false;
    std::deque<Schedulable*> runnable;
  };

  struct Timer {
    int64_t resume_at_us;
    Schedulable* unit;
    int64_t wait_epoch;
    bool operator>(const Timer& other) const {
      return resume_at_us > other.resume_at_us;
    }
  };

  void WorkerLoop();
  /// Moves expired timers' units back to their run queues.
  void PromoteTimersLocked(int64_t now_us);
  /// Runnable unit of the smallest-vruntime group, or null.
  Schedulable* PickLocked();
  double MinActiveVruntimeLocked() const;
  /// Erases the unit and its group bookkeeping; notifies retire waiters.
  void EraseUnitLocked(Schedulable* unit);

  int64_t quantum_us_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable retire_cv_;
  std::map<Schedulable*, Unit> units_;
  std::map<std::string, Group> groups_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// The scheduler a component should use: the config's, or the process
/// default when the config doesn't name one.
MorselScheduler* SchedulerFor(const EngineConfig& config);

}  // namespace accordion

#endif  // ACCORDION_EXEC_SCHEDULER_H_
