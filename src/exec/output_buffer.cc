#include "exec/output_buffer.h"

#include <algorithm>

#include "common/clock.h"
#include "common/logging.h"
#include "exec/radix_partitioner.h"

namespace accordion {

// ---------------------------------------------------------------------------
// ElasticCapacity
// ---------------------------------------------------------------------------

ElasticCapacity::ElasticCapacity(const EngineConfig* config,
                                 TaskContext* task_ctx)
    : config_(config),
      task_ctx_(task_ctx),
      capacity_(config->elastic_buffers ? config->buffer_initial_bytes()
                                        : config->buffer_fixed_bytes()),
      window_start_ms_(NowMillis()) {}

bool ElasticCapacity::Accepting(int64_t queued_bytes) const {
  return queued_bytes < capacity_.load();
}

void ElasticCapacity::OnEmptyPop() {
  if (!config_->elastic_buffers) return;
  int64_t cap = capacity_.load();
  int64_t grown = std::min(config_->buffer_max_bytes(), cap * 2);
  if (grown != cap) {
    capacity_.store(grown);
    ++turn_ups_;
    if (task_ctx_ != nullptr) task_ctx_->BufferTurnUp();
  }
}

void ElasticCapacity::OnConsume(int64_t bytes) {
  if (!config_->elastic_buffers) return;
  std::lock_guard<std::mutex> lock(window_mutex_);
  window_bytes_ += bytes;
  int64_t now = NowMillis();
  if (now - window_start_ms_ >= config_->buffer_resize_interval_ms) {
    // Re-fit capacity to the recent consumption rate (with headroom), so
    // production never outruns consumption by more than one window.
    int64_t fitted = std::max(config_->buffer_initial_bytes(),
                              window_bytes_ + window_bytes_ / 2);
    capacity_.store(std::min(config_->buffer_max_bytes(), fitted));
    window_bytes_ = 0;
    window_start_ms_ = now;
  }
}

// ---------------------------------------------------------------------------
// OutputBuffer
// ---------------------------------------------------------------------------

OutputBuffer::OutputBuffer(OutputBufferConfig config, TaskContext* task_ctx)
    : config_(std::move(config)),
      task_ctx_(task_ctx),
      capacity_(&task_ctx->config(), /*task_ctx=*/nullptr) {}

void OutputBuffer::ProducerDriverFinished() {
  producers_started_ = true;
  int remaining = --producer_drivers_;
  ACC_CHECK(remaining >= 0) << "producer driver count underflow";
}

void OutputBuffer::AddTaskGroup(int count, int first_buffer_id) {
  ACC_CHECK(false) << "AddTaskGroup on non-shuffle buffer";
}

void OutputBuffer::SwitchToNewestGroup() {
  ACC_CHECK(false) << "SwitchToNewestGroup on non-shuffle buffer";
}

PagesResult OutputBuffer::GetPages(int buffer_id, int64_t start_sequence,
                                   int max_pages) {
  std::lock_guard<std::mutex> lock(stream_mutex_);
  ConsumerStream& stream = streams_[buffer_id];
  if (start_sequence == kAutoSequence) start_sequence = stream.next_sequence;
  // Acknowledge: everything below start_sequence arrived at the consumer.
  while (stream.window_start < start_sequence && !stream.window.empty()) {
    stream.window.pop_front();
    ++stream.window_start;
  }
  if (start_sequence < stream.next_sequence) {
    // Retry after a lost response: re-serve from the unacked window.
    PagesResult result;
    size_t offset = static_cast<size_t>(start_sequence - stream.window_start);
    for (size_t i = offset; i < stream.window.size() &&
                            static_cast<int>(result.pages.size()) < max_pages;
         ++i) {
      result.pages.push_back(stream.window[i]);
    }
    result.complete =
        stream.complete_seen &&
        start_sequence + static_cast<int64_t>(result.pages.size()) ==
            stream.next_sequence;
    return result;
  }
  PagesResult result = FetchNewPages(buffer_id, max_pages);
  for (const auto& page : result.pages) {
    stream.window.push_back(page);
    ++stream.next_sequence;
  }
  if (result.complete) stream.complete_seen = true;
  result.complete = stream.complete_seen;
  return result;
}

// ---------------------------------------------------------------------------
// SharedBuffer
// ---------------------------------------------------------------------------

SharedBuffer::SharedBuffer(OutputBufferConfig config, TaskContext* task_ctx)
    : OutputBuffer(std::move(config), task_ctx) {
  // Ids below first_buffer_id are marked done: no consumer will pull them.
  consumer_done_.resize(config_.first_buffer_id, true);
  consumer_done_.resize(config_.first_buffer_id + config_.initial_consumers,
                        false);
}

bool SharedBuffer::AcceptingInput() const {
  return capacity_.Accepting(queued_bytes_.load());
}

void SharedBuffer::Enqueue(const PagePtr& page) {
  producers_started_ = true;
  std::lock_guard<std::mutex> lock(mutex_);
  queue_.push_back(page);
  queued_bytes_ += page->ByteSize();
}

PagesResult SharedBuffer::FetchNewPages(int buffer_id, int max_pages) {
  PagesResult result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (buffer_id >= static_cast<int>(consumer_done_.size())) {
      consumer_done_.resize(buffer_id + 1, false);
    }
    if (consumer_done_[buffer_id]) {
      result.complete = true;
      return result;
    }
    while (!queue_.empty() &&
           static_cast<int>(result.pages.size()) < max_pages) {
      result.pages.push_back(queue_.front());
      queue_.pop_front();
    }
    if (queue_.empty() && NoMoreInput()) {
      result.complete = true;
      if (buffer_id < static_cast<int>(consumer_done_.size())) {
        consumer_done_[buffer_id] = true;
      }
    }
  }
  int64_t bytes = result.TotalBytes();
  queued_bytes_ -= bytes;
  if (bytes > 0) {
    capacity_.OnConsume(bytes);
  } else if (!result.complete) {
    capacity_.OnEmptyPop();
  }
  return result;
}

void SharedBuffer::SetConsumerCount(int n) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (n > static_cast<int>(consumer_done_.size())) {
    consumer_done_.resize(n, false);
  }
}

void SharedBuffer::EndSignal(int buffer_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (buffer_id >= static_cast<int>(consumer_done_.size())) {
    consumer_done_.resize(buffer_id + 1, false);
  }
  consumer_done_[buffer_id] = true;
}

bool SharedBuffer::AllConsumersDone() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (bool done : consumer_done_) {
    if (!done) return false;
  }
  return NoMoreInput() && queue_.empty();
}

// ---------------------------------------------------------------------------
// BroadcastBuffer
// ---------------------------------------------------------------------------

BroadcastBuffer::BroadcastBuffer(OutputBufferConfig config,
                                 TaskContext* task_ctx)
    : OutputBuffer(std::move(config), task_ctx) {
  consumers_.resize(config_.first_buffer_id + config_.initial_consumers);
  for (int i = 0; i < config_.first_buffer_id; ++i) {
    consumers_[i].done = true;  // ids below the window are never pulled
  }
}

bool BroadcastBuffer::AcceptingInput() const {
  // Broadcast retains history; bound by the max elastic capacity against
  // the slowest consumer's backlog.
  std::lock_guard<std::mutex> lock(mutex_);
  size_t slowest = cache_.size();
  for (const auto& c : consumers_) {
    if (!c.done) slowest = std::min(slowest, c.next_page);
  }
  int64_t backlog = 0;
  for (size_t i = slowest; i < cache_.size(); ++i) {
    backlog += cache_[i]->ByteSize();
  }
  return capacity_.Accepting(backlog);
}

void BroadcastBuffer::Enqueue(const PagePtr& page) {
  producers_started_ = true;
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.push_back(page);
  queued_bytes_ += page->ByteSize();
}

PagesResult BroadcastBuffer::FetchNewPages(int buffer_id, int max_pages) {
  PagesResult result;
  int64_t bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (buffer_id >= static_cast<int>(consumers_.size())) {
      consumers_.resize(buffer_id + 1);
    }
    Consumer& consumer = consumers_[buffer_id];
    if (consumer.done) {
      result.complete = true;
      return result;
    }
    while (consumer.next_page < cache_.size() &&
           static_cast<int>(result.pages.size()) < max_pages) {
      result.pages.push_back(cache_[consumer.next_page++]);
    }
    if (consumer.next_page == cache_.size() && NoMoreInput()) {
      result.complete = true;
      consumer.done = true;
    }
    bytes = result.TotalBytes();
  }
  if (bytes > 0) {
    capacity_.OnConsume(bytes);
  } else if (!result.complete) {
    capacity_.OnEmptyPop();
  }
  return result;
}

void BroadcastBuffer::SetConsumerCount(int n) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (n > static_cast<int>(consumers_.size())) consumers_.resize(n);
}

void BroadcastBuffer::EndSignal(int buffer_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (buffer_id >= static_cast<int>(consumers_.size())) {
    consumers_.resize(buffer_id + 1);
  }
  consumers_[buffer_id].done = true;
}

bool BroadcastBuffer::AllConsumersDone() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!NoMoreInput()) return false;
  for (const auto& c : consumers_) {
    if (!c.done && c.next_page < cache_.size()) return false;
    if (!c.done && c.next_page == cache_.size()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// ShuffleBuffer
// ---------------------------------------------------------------------------

ShuffleBuffer::ShuffleBuffer(OutputBufferConfig config, TaskContext* task_ctx)
    : OutputBuffer(std::move(config), task_ctx) {
  ACC_CHECK(!config_.keys.empty()) << "shuffle buffer requires hash keys";
  Group group;
  group.first_buffer_id = config_.first_buffer_id;
  group.count = config_.initial_consumers;
  group.queues.resize(group.count);
  group.done.resize(group.count, false);
  group.queued.resize(group.count, 0);
  groups_.push_back(std::move(group));
  int executors = task_ctx_->config().shuffle_executors;
  executors_.reserve(executors);
  MorselScheduler* scheduler = task_ctx_->scheduler();
  for (int i = 0; i < executors; ++i) {
    executors_.push_back(std::make_unique<ExecutorUnit>(this));
    scheduler->Enqueue(task_ctx_->scheduler_group(),
                       NonOwning(executors_.back().get()));
  }
}

ShuffleBuffer::~ShuffleBuffer() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  // Retire before the members are destroyed: blocks at most one in-flight
  // quantum per unit (the old thread-join here was the TSan-flagged
  // destruction race when executors outlived the buffer's fields).
  MorselScheduler* scheduler = task_ctx_->scheduler();
  for (auto& unit : executors_) scheduler->Retire(unit.get());
}

bool ShuffleBuffer::AcceptingInput() const {
  return capacity_.Accepting(queued_bytes_.load());
}

void ShuffleBuffer::Enqueue(const PagePtr& page) {
  producers_started_ = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    input_queue_.emplace_back(next_seq_++, page);
    queued_bytes_ += page->ByteSize();
    if (config_.retain_cache) cache_.push_back(page);
  }
  // Kick idle executors out of their poll backoff.
  MorselScheduler* scheduler = task_ctx_->scheduler();
  for (auto& unit : executors_) scheduler->Wake(unit.get());
}

void ShuffleBuffer::PartitionIntoGroupLocked(const PagePtr& page,
                                             Group* group) {
  if (group->count == 1) {
    group->queues[0].push_back(page);
    group->queued[0] += page->ByteSize();
    return;
  }
  // Batch-hash, split into selection vectors, then scatter each partition
  // with run-coalesced bulk copies (GatherSelection) — the same
  // vectorized scatter the radix aggregation path uses. Routing stays
  // `hash % count` so partition assignment matches the per-row protocol
  // consumers were scheduled against.
  page->HashRows(config_.keys, &scatter_hashes_);
  RadixPartitioner::BuildModuloSelections(scatter_hashes_.data(),
                                          page->num_rows(), group->count,
                                          &scatter_selections_);
  for (int p = 0; p < group->count; ++p) {
    if (scatter_selections_[p].empty()) continue;
    PagePtr part = GatherSelection(*page, scatter_selections_[p]);
    group->queues[p].push_back(part);
    group->queued[p] += part->ByteSize();
  }
}

Schedulable::Quantum ShuffleBuffer::ExecutorUnit::RunQuantum(
    int64_t quantum_us) {
  return parent_->ExecutorQuantum(this, quantum_us);
}

Schedulable::Quantum ShuffleBuffer::ExecutorQuantum(ExecutorUnit* unit,
                                                    int64_t quantum_us) {
  const int64_t deadline_us = NowMicros() + quantum_us;
  while (true) {
    if (unit->active_) {
      // Deliver the popped page once its simulated shuffle CPU is granted.
      if (NowMicros() < unit->grant_us_) {
        return Schedulable::Quantum::Waiting(unit->grant_us_);
      }
      std::lock_guard<std::mutex> lock(mutex_);
      for (size_t g = 0; g < groups_.size(); ++g) {
        Group& group = groups_[g];
        bool deliver = config_.multicast_groups
                           ? group.routing
                           : static_cast<int>(g) == active_group_;
        // Pages predating the group arrived through the cache replay.
        if (deliver && group.routing && unit->seq_ >= group.created_seq) {
          PartitionIntoGroupLocked(unit->page_, &group);
        }
      }
      --in_flight_;
      unit->active_ = false;
      unit->page_ = nullptr;
    }
    if (NowMicros() >= deadline_us) return Schedulable::Quantum::Runnable();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (shutdown_) return Schedulable::Quantum::Finished();
      if (input_queue_.empty()) {
        // Enqueue() wakes us early; this is just the fallback poll.
        return Schedulable::Quantum::Waiting(
            NowMicros() + task_ctx_->config().driver_idle_sleep_us);
      }
      unit->seq_ = input_queue_.front().first;
      unit->page_ = input_queue_.front().second;
      input_queue_.pop_front();
      ++in_flight_;
      unit->active_ = true;
    }
    double cost_us = static_cast<double>(unit->page_->num_rows()) *
                     task_ctx_->config().cost.shuffle_executor_us *
                     task_ctx_->config().cost.scale;
    unit->grant_us_ = task_ctx_->ReserveCpuMicros(cost_us);
  }
}

bool ShuffleBuffer::DrainedLocked() const {
  return input_queue_.empty() && in_flight_ == 0 && replaying_ == 0;
}

PagesResult ShuffleBuffer::FetchNewPages(int buffer_id, int max_pages) {
  PagesResult result;
  int64_t bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Group* group = nullptr;
    int index = -1;
    for (auto& g : groups_) {
      if (buffer_id >= g.first_buffer_id &&
          buffer_id < g.first_buffer_id + g.count) {
        group = &g;
        index = buffer_id - g.first_buffer_id;
        break;
      }
    }
    ACC_CHECK(group != nullptr) << "unknown buffer id " << buffer_id;
    if (group->done[index]) {
      result.complete = true;
      return result;
    }
    auto& queue = group->queues[index];
    while (!queue.empty() && static_cast<int>(result.pages.size()) < max_pages) {
      bytes += queue.front()->ByteSize();
      group->queued[index] -= queue.front()->ByteSize();
      result.pages.push_back(queue.front());
      queue.pop_front();
    }
    bool no_more_for_group =
        (NoMoreInput() || !group->routing) && DrainedLocked();
    if (queue.empty() && no_more_for_group) {
      result.complete = true;
      group->done[index] = true;
    }
  }
  queued_bytes_ -= bytes;
  if (bytes > 0) {
    capacity_.OnConsume(bytes);
  } else if (!result.complete) {
    capacity_.OnEmptyPop();
  }
  return result;
}

void ShuffleBuffer::SetConsumerCount(int n) {
  std::lock_guard<std::mutex> lock(mutex_);
  ACC_CHECK(groups_.size() == 1)
      << "SetConsumerCount after task groups were added";
  Group& group = groups_[0];
  n -= group.first_buffer_id;
  if (n <= group.count) return;
  // Growing the primary group would misroute already-partitioned rows for
  // stateful consumers; stateless consumers tolerate it. Re-partitioning
  // of queued-but-undelivered pages keeps hash consumers correct.
  std::vector<PagePtr> pending;
  for (auto& queue : group.queues) {
    for (auto& page : queue) pending.push_back(page);
    queue.clear();
  }
  group.count = n;
  group.queues.assign(n, {});
  group.done.assign(n, false);
  group.queued.assign(n, 0);
  for (const auto& page : pending) PartitionIntoGroupLocked(page, &group);
}

void ShuffleBuffer::EndSignal(int buffer_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& group : groups_) {
    if (buffer_id >= group.first_buffer_id &&
        buffer_id < group.first_buffer_id + group.count) {
      group.done[buffer_id - group.first_buffer_id] = true;
      return;
    }
  }
}

bool ShuffleBuffer::AllConsumersDone() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!NoMoreInput() || !DrainedLocked()) return false;
  for (const auto& group : groups_) {
    for (int i = 0; i < group.count; ++i) {
      if (!group.done[i] && !group.queues[i].empty()) return false;
      if (!group.done[i]) return false;
    }
  }
  return true;
}

void ShuffleBuffer::AddTaskGroup(int count, int first_buffer_id) {
  ACC_CHECK(count > 0);
  std::vector<PagePtr> replay;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Group& existing : groups_) {
      // Retried RPC (response dropped): the group already exists.
      if (existing.first_buffer_id == first_buffer_id) return;
    }
    Group group;
    group.first_buffer_id = first_buffer_id;
    group.count = count;
    group.created_seq = next_seq_;
    group.queues.resize(count);
    group.done.resize(count, false);
    group.queued.resize(count, 0);
    groups_.push_back(std::move(group));
    replay = cache_;  // snapshot: later pages reach the group via routing
    ++replaying_;
  }
  // Reshuffle the cache into the new group (Table 2's "shuffle time").
  int64_t bytes = 0;
  size_t group_index = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    group_index = groups_.size() - 1;
  }
  for (const auto& page : replay) {
    double cost_us = static_cast<double>(page->num_rows()) *
                     task_ctx_->config().cost.shuffle_executor_us *
                     task_ctx_->config().cost.scale;
    task_ctx_->cpu()->Consume(cost_us * 1e-6);
    bytes += page->ByteSize();
    std::lock_guard<std::mutex> lock(mutex_);
    PartitionIntoGroupLocked(page, &groups_[group_index]);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --replaying_;
  }
  last_reshuffle_bytes_ = bytes;
}

void ShuffleBuffer::SwitchToNewestGroup() {
  std::lock_guard<std::mutex> lock(mutex_);
  int newest = static_cast<int>(groups_.size()) - 1;
  for (int g = 0; g < static_cast<int>(groups_.size()); ++g) {
    groups_[g].routing = g == newest;
  }
  active_group_ = newest;
}

int ShuffleBuffer::NumGroups() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(groups_.size());
}

std::unique_ptr<OutputBuffer> MakeOutputBuffer(OutputBufferConfig config,
                                               TaskContext* task_ctx) {
  switch (config.partitioning) {
    case Partitioning::kHash:
      return std::make_unique<ShuffleBuffer>(std::move(config), task_ctx);
    case Partitioning::kBroadcast:
      return std::make_unique<BroadcastBuffer>(std::move(config), task_ctx);
    case Partitioning::kArbitrary:
    case Partitioning::kGather:
      return std::make_unique<SharedBuffer>(std::move(config), task_ctx);
  }
  return nullptr;
}

}  // namespace accordion
