#ifndef ACCORDION_EXEC_TASK_INFO_H_
#define ACCORDION_EXEC_TASK_INFO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/split.h"

namespace accordion {

enum class TaskState { kCreated, kRunning, kFinished, kAborted, kFailed };

inline const char* TaskStateName(TaskState state) {
  switch (state) {
    case TaskState::kCreated:
      return "created";
    case TaskState::kRunning:
      return "running";
    case TaskState::kFinished:
      return "finished";
    case TaskState::kAborted:
      return "aborted";
    case TaskState::kFailed:
      return "failed";
  }
  return "?";
}

/// Snapshot of one task's runtime state, fetched periodically by the
/// coordinator's runtime information collector (paper Fig. 18).
struct TaskInfo {
  TaskId id;
  TaskState state = TaskState::kCreated;

  /// Alive (not-yet-finished) drivers per pipeline.
  std::vector<int> drivers_per_pipeline;
  /// Driver count of the tunable pipelines (the task DOP knob value).
  int task_dop = 0;

  int64_t output_rows = 0;
  int64_t output_bytes = 0;
  int64_t scan_rows = 0;
  int64_t scan_total_rows = 0;
  int64_t processed_rows = 0;
  int64_t turn_up_counter = 0;
  int64_t hash_build_micros = 0;
  int64_t buffer_queued_bytes = 0;

  // --- join memory accounting (QuerySnapshot counters) ---
  /// High-water mark of tracked build-side bytes in this task.
  int64_t peak_build_bytes = 0;
  /// Bytes written to spill files (build + probe sides, all levels).
  int64_t spill_bytes_written = 0;
  /// Spill partition files created (counts recursion levels).
  int64_t spill_partitions = 0;
  /// Probe kernel used by this task's joins: 0 none, 1 scalar, 2 simd.
  int probe_path = 0;

  /// True when the task has join bridges and all hash tables are built
  /// (gates the probe-side switch of §4.5).
  bool has_join = false;
  bool hash_tables_built = false;

  /// Node-level utilizations at snapshot time (for n_f capping, §5.3).
  double cpu_utilization = 0;
  double nic_utilization = 0;

  // --- fault-model state (coordinator health monitor inputs) ---
  /// Task hit an unrecoverable error (retry exhaustion); the query fails.
  bool failed = false;
  std::string failure_message;
  /// Data-plane RPC retries performed by this task's exchange clients.
  int64_t rpc_retries = 0;
};

}  // namespace accordion

#endif  // ACCORDION_EXEC_TASK_INFO_H_
