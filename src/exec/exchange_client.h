#ifndef ACCORDION_EXEC_EXCHANGE_CLIENT_H_
#define ACCORDION_EXEC_EXCHANGE_CLIENT_H_

#include <atomic>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/retry_policy.h"
#include "exec/output_buffer.h"
#include "exec/split.h"
#include "exec/task_context.h"

namespace accordion {

/// Performs one GetPages RPC against an upstream task's output buffer,
/// resuming at `start_sequence` (the pages already received from that
/// buffer id). Wired by the cluster layer (adds RPC latency, NIC charging
/// and fault injection); kUnavailable errors are retryable.
using FetchPagesFn = std::function<Result<PagesResult>(
    const RemoteSplit&, int buffer_id, int64_t start_sequence, int max_pages)>;

/// Task-side client pulling pages from all tasks of one upstream stage
/// (paper Fig. 7's exchange receive buffer + Fig. 12a's global remote
/// split set). One client per RemoteSource node per task; shared by all
/// exchange-operator drivers of that pipeline.
///
/// A background fetcher round-robins over the upstream tasks; its receive
/// buffer is elastic (§4.2.2) and its turn-up counter feeds the
/// bottleneck localizer (§5.1). Remote splits can be added while running
/// — that is what makes upstream intra-stage DOP increases invisible to
/// the consuming operators.
///
/// Fault handling: each source keeps its own receive sequence, so a
/// transient fetch error (injected fault, dropped response) is retried
/// with backoff at the same sequence and the upstream resume window
/// re-serves exactly the missed pages. When retries are exhausted the
/// client reports the failure to its TaskContext and stalls — it never
/// fabricates completion, because that would silently truncate results.
class ExchangeClient {
 public:
  ExchangeClient(TaskContext* task_ctx, int own_buffer_id, FetchPagesFn fetch);
  ~ExchangeClient();

  /// Registers an upstream task (startup wiring or runtime DOP increase).
  void AddRemoteSplit(const RemoteSplit& split);

  /// Starts the background fetcher. Call after initial splits are added.
  void Start();

  /// Data page, nullptr (nothing buffered yet), or the end page once all
  /// upstream tasks have completed and the buffer drained.
  PagePtr Poll();

  bool complete() const { return complete_.load(); }
  /// True once a fetch failed unrecoverably (also reported to the
  /// TaskContext, from where the coordinator escalates).
  bool failed() const { return failed_.load(); }
  int64_t buffered_bytes() const { return buffered_bytes_.load(); }
  int num_sources() const;

 private:
  void FetchLoop();
  bool AllSourcesFinishedLocked() const;
  /// Marks the client (and its task) failed; the fetcher idles afterwards.
  void Fail(const Status& status);

  TaskContext* task_ctx_;
  int own_buffer_id_;
  FetchPagesFn fetch_;
  ElasticCapacity capacity_;
  Random rng_;  // fetcher-thread only (backoff jitter)

  mutable std::mutex mutex_;
  struct Source {
    RemoteSplit split;
    bool finished = false;
    /// Pages received so far == resume point for the next fetch.
    int64_t next_sequence = 0;
    /// Consecutive failed fetches (reset on success).
    int attempts = 0;
    /// Wall-clock start of the current retry run (first failure), for the
    /// deadline check.
    int64_t first_failure_ms = 0;
  };
  std::vector<Source> sources_;
  std::deque<PagePtr> queue_;
  std::atomic<int64_t> buffered_bytes_{0};
  std::atomic<bool> complete_{false};
  std::atomic<bool> failed_{false};
  std::atomic<bool> shutdown_{false};
  std::thread fetcher_;
  bool started_ = false;
};

}  // namespace accordion

#endif  // ACCORDION_EXEC_EXCHANGE_CLIENT_H_
