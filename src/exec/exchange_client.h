#ifndef ACCORDION_EXEC_EXCHANGE_CLIENT_H_
#define ACCORDION_EXEC_EXCHANGE_CLIENT_H_

#include <atomic>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/output_buffer.h"
#include "exec/split.h"
#include "exec/task_context.h"

namespace accordion {

/// Performs one GetPages RPC against an upstream task's output buffer.
/// Wired by the cluster layer (adds RPC latency and NIC charging).
using FetchPagesFn =
    std::function<PagesResult(const RemoteSplit&, int buffer_id, int max_pages)>;

/// Task-side client pulling pages from all tasks of one upstream stage
/// (paper Fig. 7's exchange receive buffer + Fig. 12a's global remote
/// split set). One client per RemoteSource node per task; shared by all
/// exchange-operator drivers of that pipeline.
///
/// A background fetcher round-robins over the upstream tasks; its receive
/// buffer is elastic (§4.2.2) and its turn-up counter feeds the
/// bottleneck localizer (§5.1). Remote splits can be added while running
/// — that is what makes upstream intra-stage DOP increases invisible to
/// the consuming operators.
class ExchangeClient {
 public:
  ExchangeClient(TaskContext* task_ctx, int own_buffer_id, FetchPagesFn fetch);
  ~ExchangeClient();

  /// Registers an upstream task (startup wiring or runtime DOP increase).
  void AddRemoteSplit(const RemoteSplit& split);

  /// Starts the background fetcher. Call after initial splits are added.
  void Start();

  /// Data page, nullptr (nothing buffered yet), or the end page once all
  /// upstream tasks have completed and the buffer drained.
  PagePtr Poll();

  bool complete() const { return complete_.load(); }
  int64_t buffered_bytes() const { return buffered_bytes_.load(); }
  int num_sources() const;

 private:
  void FetchLoop();
  bool AllSourcesFinishedLocked() const;

  TaskContext* task_ctx_;
  int own_buffer_id_;
  FetchPagesFn fetch_;
  ElasticCapacity capacity_;

  mutable std::mutex mutex_;
  struct Source {
    RemoteSplit split;
    bool finished = false;
  };
  std::vector<Source> sources_;
  std::deque<PagePtr> queue_;
  std::atomic<int64_t> buffered_bytes_{0};
  std::atomic<bool> complete_{false};
  std::atomic<bool> shutdown_{false};
  std::thread fetcher_;
  bool started_ = false;
};

}  // namespace accordion

#endif  // ACCORDION_EXEC_EXCHANGE_CLIENT_H_
