#ifndef ACCORDION_EXEC_EXCHANGE_CLIENT_H_
#define ACCORDION_EXEC_EXCHANGE_CLIENT_H_

#include <atomic>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "common/random.h"
#include "common/retry_policy.h"
#include "exec/output_buffer.h"
#include "exec/scheduler.h"
#include "exec/split.h"
#include "exec/task_context.h"

namespace accordion {

/// Performs one GetPages RPC against an upstream task's output buffer,
/// resuming at `start_sequence` (the pages already received from that
/// buffer id). Wired by the cluster layer (adds RPC latency, NIC charging
/// and fault injection); kUnavailable errors are retryable.
using FetchPagesFn = std::function<Result<PagesResult>(
    const RemoteSplit&, int buffer_id, int64_t start_sequence, int max_pages)>;

/// Deferred-latency variant for pool-scheduled fetchers: performs the
/// fetch immediately but reports when the response would arrive
/// (`ready_at_us`, simulated RPC latency + NIC bandwidth grants) instead
/// of sleeping. The client commits the pages at that time and yields the
/// pool thread in between.
using FetchPagesDeferredFn = std::function<Result<PagesResult>(
    const RemoteSplit&, int buffer_id, int64_t start_sequence, int max_pages,
    int64_t* ready_at_us)>;

/// Task-side client pulling pages from all tasks of one upstream stage
/// (paper Fig. 7's exchange receive buffer + Fig. 12a's global remote
/// split set). One client per RemoteSource node per task; shared by all
/// exchange-operator drivers of that pipeline.
///
/// The fetcher is a resumable unit on the shared morsel-scheduler pool
/// (no dedicated thread): each quantum issues at most one fetch,
/// round-robining over the upstream tasks, and yields while the simulated
/// response is in flight, while backpressured by the elastic receive
/// buffer (§4.2.2), or while backing off after an error. Remote splits
/// can be added while running — that is what makes upstream intra-stage
/// DOP increases invisible to the consuming operators.
///
/// Fault handling: each source keeps its own receive sequence, so a
/// transient fetch error (injected fault, dropped response) is retried
/// with backoff at the same sequence and the upstream resume window
/// re-serves exactly the missed pages. When retries are exhausted the
/// client reports the failure to its TaskContext and idles — it never
/// fabricates completion, because that would silently truncate results.
class ExchangeClient : public Schedulable {
 public:
  ExchangeClient(TaskContext* task_ctx, int own_buffer_id, FetchPagesFn fetch,
                 FetchPagesDeferredFn fetch_deferred = nullptr);
  ~ExchangeClient() override;

  /// Registers an upstream task (startup wiring or runtime DOP increase).
  void AddRemoteSplit(const RemoteSplit& split);

  /// Enqueues the fetcher on the pool. Call after initial splits are added.
  void Start();

  /// One fetch round; called only by the pool.
  Quantum RunQuantum(int64_t quantum_us) override;

  /// Data page, nullptr (nothing buffered yet), or the end page once all
  /// upstream tasks have completed and the buffer drained.
  PagePtr Poll();

  bool complete() const { return complete_.load(); }
  /// True once a fetch failed unrecoverably (also reported to the
  /// TaskContext, from where the coordinator escalates).
  bool failed() const { return failed_.load(); }
  int64_t buffered_bytes() const { return buffered_bytes_.load(); }
  int num_sources() const;

 private:
  bool AllSourcesFinishedLocked() const;
  /// Marks the client (and its task) failed; the fetcher idles afterwards.
  void Fail(const Status& status);
  /// Applies a successfully fetched batch whose simulated response has
  /// arrived: sequences, queue, completion, idle backoff.
  void CommitPending();

  TaskContext* task_ctx_;
  int own_buffer_id_;
  FetchPagesFn fetch_;
  FetchPagesDeferredFn fetch_deferred_;
  ElasticCapacity capacity_;
  Random rng_;  // quantum-only (backoff jitter)

  mutable std::mutex mutex_;
  struct Source {
    RemoteSplit split;
    bool finished = false;
    /// Pages received so far == resume point for the next fetch.
    int64_t next_sequence = 0;
    /// Consecutive failed fetches (reset on success).
    int attempts = 0;
    /// Wall-clock start of the current retry run (first failure), for the
    /// deadline check.
    int64_t first_failure_ms = 0;
  };
  std::vector<Source> sources_;
  std::deque<PagePtr> queue_;
  std::atomic<int64_t> buffered_bytes_{0};
  std::atomic<bool> complete_{false};
  std::atomic<bool> failed_{false};
  bool started_ = false;

  // Quantum-crossing fetch state; touched only inside quanta (the
  // scheduler runs at most one quantum of a unit at a time).
  struct PendingFetch {
    bool active = false;
    RemoteSplit target;
    PagesResult result;
    int64_t ready_at_us = 0;
  };
  PendingFetch pending_;
  size_t cursor_ = 0;
  int64_t empty_streak_ = 0;
  int64_t backoff_until_us_ = 0;
};

}  // namespace accordion

#endif  // ACCORDION_EXEC_EXCHANGE_CLIENT_H_
