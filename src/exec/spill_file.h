#ifndef ACCORDION_EXEC_SPILL_FILE_H_
#define ACCORDION_EXEC_SPILL_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "common/status.h"
#include "vector/page.h"

namespace accordion {

/// One temp file of serialized pages — the unit of grace-spill storage.
/// A join build (or probe) partition that exceeds its memory budget
/// streams pages in via Append, seals the file with FinishWrite, then
/// reads them back with Next/Rewind during partition-pairwise processing.
///
/// Wire format: a sequence of frames, each
///   [u32 magic][u32 payload_len][u64 checksum][payload]
/// where payload is Page::Serialize() output and checksum is HashBytes
/// over the payload. The reader validates magic, length and checksum on
/// every frame and returns kIoError for corruption or truncation instead
/// of crashing or silently yielding wrong rows.
///
/// Writes are buffered to `chunk_bytes` before hitting the file, so many
/// small partition appends coalesce into large sequential writes. The
/// destructor closes and unlinks the file (spill data never outlives the
/// join). Not thread-safe; the owning bridge serializes access.
class SpillFile {
 public:
  /// Creates a uniquely named spill file under `dir` (empty: the system
  /// temp directory), open for writing.
  static Result<std::unique_ptr<SpillFile>> Create(const std::string& dir,
                                                   const std::string& prefix,
                                                   int64_t chunk_bytes);

  /// Opens an existing file for reading only (corruption tests and
  /// recovery tooling). The file is still unlinked on destruction.
  static Result<std::unique_ptr<SpillFile>> OpenExisting(
      const std::string& path);

  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Serializes and buffers one page; flushes the buffer to disk when it
  /// passes the chunk size. Write mode only.
  Status Append(const Page& page);

  /// Flushes buffered frames and switches the file to read mode.
  /// Idempotent once successful.
  Status FinishWrite();

  /// Next page, nullptr at clean end-of-file. Requires FinishWrite (or
  /// OpenExisting). Returns kIoError on a corrupted or truncated frame.
  Result<PagePtr> Next();

  /// Restarts reading from the first frame.
  Status Rewind();

  const std::string& path() const { return path_; }
  int64_t bytes_written() const { return bytes_written_; }
  int64_t rows_written() const { return rows_written_; }
  int64_t pages_written() const { return pages_written_; }

 private:
  SpillFile(std::string path, std::FILE* file, int64_t chunk_bytes,
            bool readable);

  Status FlushBuffer();

  std::string path_;
  std::FILE* file_ = nullptr;
  int64_t chunk_bytes_;
  bool readable_;  // FinishWrite sealed the file (or OpenExisting)

  std::string write_buffer_;
  int64_t bytes_written_ = 0;
  int64_t rows_written_ = 0;
  int64_t pages_written_ = 0;
};

}  // namespace accordion

#endif  // ACCORDION_EXEC_SPILL_FILE_H_
