#include "exec/scheduler.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/clock.h"
#include "common/logging.h"
#include "exec/config.h"
#include "exec/task_context.h"

namespace accordion {

namespace {
/// Set inside pool threads so Retire can refuse to self-deadlock.
thread_local bool tls_in_pool_thread = false;

constexpr double kMinWeight = 1e-3;

std::chrono::steady_clock::time_point ToTimePoint(int64_t us) {
  return std::chrono::steady_clock::time_point(std::chrono::microseconds(us));
}
}  // namespace

MorselScheduler::MorselScheduler(Options options)
    : quantum_us_(std::max<int64_t>(options.quantum_us, 50)) {
  int threads = options.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 4;  // hardware_concurrency may report 0
  }
  threads_.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

MorselScheduler::~MorselScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

MorselScheduler* MorselScheduler::Default() {
  // Leaked singleton: outlives every static-duration task/test fixture and
  // keeps LeakSanitizer quiet (function-local static, never destroyed
  // while any user could still enqueue).
  static MorselScheduler* pool = new MorselScheduler();
  return pool;
}

MorselScheduler* SchedulerFor(const EngineConfig& config) {
  return config.scheduler != nullptr ? config.scheduler
                                     : MorselScheduler::Default();
}

MorselScheduler* TaskContext::scheduler() const {
  return SchedulerFor(*config_);
}

double MorselScheduler::MinActiveVruntimeLocked() const {
  double min_v = std::numeric_limits<double>::max();
  bool any = false;
  for (const auto& [name, group] : groups_) {
    if (group.members == 0) continue;
    min_v = std::min(min_v, group.vruntime);
    any = true;
  }
  return any ? min_v : 0.0;
}

void MorselScheduler::Enqueue(const std::string& group,
                              std::shared_ptr<Schedulable> unit) {
  ACC_CHECK(unit != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ACC_CHECK(units_.count(unit.get()) == 0)
        << "unit enqueued twice in group " << group;
    Group& g = groups_[group];
    if (g.members == 0) {
      // A newly active group starts at the current minimum so it neither
      // starves the field (vruntime too low after idling) nor waits
      // behind everyone (too high).
      g.vruntime = std::max(g.vruntime, MinActiveVruntimeLocked());
    }
    ++g.members;
    Unit entry;
    entry.ref = std::move(unit);
    entry.group = group;
    entry.state = UnitState::kQueued;
    Schedulable* raw = entry.ref.get();
    units_.emplace(raw, std::move(entry));
    g.runnable.push_back(raw);
  }
  work_cv_.notify_one();
}

void MorselScheduler::SetGroupWeight(const std::string& group, double weight) {
  std::lock_guard<std::mutex> lock(mutex_);
  Group& g = groups_[group];
  g.weight = std::max(weight, kMinWeight);
  g.pinned = true;
}

void MorselScheduler::ClearGroup(const std::string& group) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  it->second.pinned = false;
  it->second.weight = 1.0;
  if (it->second.members == 0) groups_.erase(it);
}

void MorselScheduler::Wake(Schedulable* unit) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = units_.find(unit);
    if (it == units_.end() || it->second.state != UnitState::kWaiting) return;
    ++it->second.wait_epoch;  // invalidate the pending timer entry
    it->second.state = UnitState::kQueued;
    groups_[it->second.group].runnable.push_back(unit);
  }
  work_cv_.notify_one();
}

void MorselScheduler::EraseUnitLocked(Schedulable* unit) {
  auto it = units_.find(unit);
  ACC_CHECK(it != units_.end());
  auto git = groups_.find(it->second.group);
  ACC_CHECK(git != groups_.end());
  Group& g = git->second;
  --g.members;
  auto pos = std::find(g.runnable.begin(), g.runnable.end(), unit);
  if (pos != g.runnable.end()) g.runnable.erase(pos);
  if (g.members == 0 && !g.pinned) groups_.erase(git);
  units_.erase(it);
  retire_cv_.notify_all();
}

void MorselScheduler::Retire(Schedulable* unit) {
  ACC_CHECK(!tls_in_pool_thread)
      << "Retire from a pool thread would self-deadlock";
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = units_.find(unit);
  if (it == units_.end()) return;  // already finished
  it->second.retire_requested = true;
  if (it->second.state != UnitState::kRunning) {
    EraseUnitLocked(unit);
    return;
  }
  // A pool thread is inside RunQuantum; it observes retire_requested when
  // the quantum returns and erases the unit.
  retire_cv_.wait(lock, [&] { return units_.count(unit) == 0; });
}

void MorselScheduler::PromoteTimersLocked(int64_t now_us) {
  while (!timers_.empty() && timers_.top().resume_at_us <= now_us) {
    Timer timer = timers_.top();
    timers_.pop();
    auto it = units_.find(timer.unit);
    if (it == units_.end() || it->second.state != UnitState::kWaiting ||
        it->second.wait_epoch != timer.wait_epoch) {
      continue;  // stale entry (unit woken, retired or finished)
    }
    it->second.state = UnitState::kQueued;
    groups_[it->second.group].runnable.push_back(timer.unit);
  }
}

Schedulable* MorselScheduler::PickLocked() {
  Group* best = nullptr;
  for (auto& [name, group] : groups_) {
    if (group.runnable.empty()) continue;
    if (best == nullptr || group.vruntime < best->vruntime) best = &group;
  }
  if (best == nullptr) return nullptr;
  Schedulable* unit = best->runnable.front();
  best->runnable.pop_front();
  return unit;
}

void MorselScheduler::WorkerLoop() {
  tls_in_pool_thread = true;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (shutdown_) return;
    PromoteTimersLocked(NowMicros());
    Schedulable* picked = PickLocked();
    if (picked == nullptr) {
      if (timers_.empty()) {
        work_cv_.wait(lock);
      } else {
        work_cv_.wait_until(lock, ToTimePoint(timers_.top().resume_at_us));
      }
      continue;
    }
    auto it = units_.find(picked);
    it->second.state = UnitState::kRunning;
    // Keep the unit alive across the unlocked quantum even if the owner
    // finishes it concurrently (owners must Retire first, but the ref
    // makes a bug here UAF-free).
    std::shared_ptr<Schedulable> ref = it->second.ref;
    lock.unlock();

    int64_t start_us = NowMicros();
    Schedulable::Quantum quantum = ref->RunQuantum(quantum_us_);
    int64_t elapsed_us = std::max<int64_t>(NowMicros() - start_us, 1);

    lock.lock();
    it = units_.find(picked);
    ACC_CHECK(it != units_.end());
    Group& g = groups_.at(it->second.group);
    g.vruntime += static_cast<double>(elapsed_us) / g.weight;
    if (it->second.retire_requested ||
        quantum.state == Schedulable::Quantum::State::kFinished) {
      EraseUnitLocked(picked);
      continue;
    }
    if (quantum.state == Schedulable::Quantum::State::kWaiting &&
        quantum.resume_at_us > NowMicros()) {
      it->second.state = UnitState::kWaiting;
      ++it->second.wait_epoch;
      timers_.push(Timer{quantum.resume_at_us, picked, it->second.wait_epoch});
    } else {
      it->second.state = UnitState::kQueued;
      g.runnable.push_back(picked);
    }
    // Peers may be sleeping with a stale (or no) timer deadline; have one
    // re-evaluate against the new runnable unit / earlier timer.
    work_cv_.notify_one();
  }
}

int MorselScheduler::num_units() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(units_.size());
}

int MorselScheduler::num_groups() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(groups_.size());
}

}  // namespace accordion
