#include "exec/simd_probe.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define ACCORDION_SIMD_X86 1
#endif

namespace accordion {
namespace simd {

#ifdef ACCORDION_SIMD_X86

bool Avx2Supported() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
}

namespace {

// 64-bit lane-wise a * b (b broadcast) built from 32x32->64 partial
// products: lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32). The high
// cross terms overflow out of the low 64 bits, matching C++ u64 multiply.
__attribute__((target("avx2"))) inline __m256i Mul64(__m256i a, uint64_t b) {
  const __m256i bv = _mm256_set1_epi64x(static_cast<long long>(b));
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(bv, 32);
  const __m256i lo_lo = _mm256_mul_epu32(a, bv);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                         _mm256_mul_epu32(a_hi, bv));
  return _mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i Mix64x4(__m256i x) {
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = Mul64(x, 0xFF51AFD7ED558CCDULL);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = Mul64(x, 0xC4CEB9FE1A85EC53ULL);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  return x;
}

inline uint64_t Mix64Scalar(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

// Scalar probe continuation for a lane whose first slot was occupied by a
// different key: linear-probe from pos+1. `slots` viewed as u64 pairs.
inline int64_t ProbeFrom(const uint64_t* slots, uint64_t mask, uint64_t pos,
                         uint64_t w) {
  while (true) {
    pos = (pos + 1) & mask;
    const uint64_t tag = slots[2 * pos];
    const int64_t id = static_cast<int64_t>(slots[2 * pos + 1]);
    if (id == -1) return -1;
    if (tag == w) return id;
  }
}

}  // namespace

__attribute__((target("avx2"))) void HashWordsAvx2(const int64_t* words,
                                                   int64_t n, uint64_t seed,
                                                   uint64_t* out) {
  const __m256i seedv = _mm256_set1_epi64x(static_cast<long long>(seed));
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i w = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    __m256i h = Mix64x4(_mm256_xor_si256(w, seedv));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  for (; i < n; ++i) {
    out[i] = Mix64Scalar(static_cast<uint64_t>(words[i]) ^ seed);
  }
}

__attribute__((target("avx2"))) void FindIdsAvx2(const void* slots_raw,
                                                 uint64_t mask,
                                                 const int64_t* words,
                                                 const uint64_t* hashes,
                                                 int64_t n, int64_t* ids) {
  const uint64_t* slots = static_cast<const uint64_t*>(slots_raw);
  const long long* base = reinterpret_cast<const long long*>(slots);
  const __m256i maskv = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i empty_id = _mm256_set1_epi64x(-1);
  const __m256i one = _mm256_set1_epi64x(1);
  // Blocks of 16 keys (4 independent gather pairs) keep more cache misses
  // in flight than a 4-wide loop; the next block's slots are prefetched a
  // full block ahead so its gathers mostly hit. Unresolved lanes (occupied
  // by a different key) collect into a bitmask and fall back to the scalar
  // linear-probe continuation after the vector work.
  constexpr int64_t kBlock = 16;
  constexpr int64_t kPrefetchDistance = 2 * kBlock;
  int64_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    if (i + kPrefetchDistance + kBlock <= n) {
      for (int l = 0; l < kBlock; ++l) {
        __builtin_prefetch(&slots[2 * (hashes[i + kPrefetchDistance + l] &
                                       mask)]);
      }
    }
    unsigned pending = 0;
    for (int v = 0; v < 4; ++v) {
      const int64_t j = i + 4 * v;
      const __m256i w =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + j));
      const __m256i h =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes + j));
      const __m256i pos = _mm256_and_si256(h, maskv);
      // Slot element index in 8-byte units: tag at 2*pos, id at 2*pos + 1.
      const __m256i tag_idx = _mm256_slli_epi64(pos, 1);
      const __m256i id_idx = _mm256_or_si256(tag_idx, one);
      const __m256i tags = _mm256_i64gather_epi64(base, tag_idx, 8);
      const __m256i slot_ids = _mm256_i64gather_epi64(base, id_idx, 8);
      const __m256i empty = _mm256_cmpeq_epi64(slot_ids, empty_id);
      const __m256i hit =
          _mm256_andnot_si256(empty, _mm256_cmpeq_epi64(tags, w));
      // hit -> slot id, empty -> -1; unresolved lanes fixed up below.
      const __m256i result = _mm256_blendv_epi8(empty_id, slot_ids, hit);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(ids + j), result);
      const int done = _mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_or_si256(hit, empty)));
      pending |= static_cast<unsigned>(~done & 0xF) << (4 * v);
    }
    while (pending != 0) {
      const int l = __builtin_ctz(pending);
      pending &= pending - 1;
      ids[i + l] = ProbeFrom(slots, mask, hashes[i + l] & mask,
                             static_cast<uint64_t>(words[i + l]));
    }
  }
  for (; i < n; ++i) {
    const uint64_t w = static_cast<uint64_t>(words[i]);
    uint64_t pos = hashes[i] & mask;
    const uint64_t tag = slots[2 * pos];
    const int64_t id = static_cast<int64_t>(slots[2 * pos + 1]);
    if (id == -1) {
      ids[i] = -1;
    } else if (tag == w) {
      ids[i] = id;
    } else {
      ids[i] = ProbeFrom(slots, mask, pos, w);
    }
  }
}

#else  // !ACCORDION_SIMD_X86

bool Avx2Supported() { return false; }

void HashWordsAvx2(const int64_t*, int64_t, uint64_t, uint64_t*) {}

void FindIdsAvx2(const void*, uint64_t, const int64_t*, const uint64_t*,
                 int64_t, int64_t*) {}

#endif  // ACCORDION_SIMD_X86

}  // namespace simd
}  // namespace accordion
