#ifndef ACCORDION_EXEC_TASK_H_
#define ACCORDION_EXEC_TASK_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "exec/driver.h"
#include "exec/pipeline.h"
#include "exec/task_info.h"

namespace accordion {

/// Everything needed to instantiate one task on a worker.
struct TaskSpec {
  TaskId id;
  PlanFragment fragment;

  /// Initial drivers per tunable pipeline (the task DOP knob).
  int initial_dop = 1;

  OutputBufferConfig output_config;

  /// Initial upstream task addresses, per source stage id.
  std::map<int, std::vector<RemoteSplit>> remote_splits;

  /// Buffer id to pull from upstream buffers, per source stage id.
  /// Defaults to the task's own sequence number; DOP-switched task groups
  /// (§4.5) read from their group's buffer-id range instead.
  std::map<int, int> source_buffer_ids;

  /// Per-query build-side memory budget resolved by the coordinator
  /// (QueryOptions::max_memory_bytes override, else the engine default).
  /// 0 falls back to EngineConfig::memory.query_build_bytes on the worker.
  int64_t build_memory_bytes = 0;
};

/// Worker-provided callbacks: split feed (coordinator split queue), split
/// opening (storage + NIC charging) and page fetching (RPC).
struct TaskApis {
  NextSplitFn next_split;
  OpenSplitFn open_split;
  FetchPagesFn fetch_pages;
  /// Optional non-blocking variant (see FetchPagesDeferredFn); when set,
  /// exchange clients prefer it and yield instead of sleeping latency.
  FetchPagesDeferredFn fetch_pages_deferred;
};

/// The smallest unit of distributed execution (paper §2). Owns its
/// pipelines, drivers (resumable units on the shared morsel-scheduler
/// pool), shared structures (local exchanges, join bridges, exchange
/// clients) and its output buffer.
///
/// Runtime elasticity surface:
///  - SetDop() adds/retires drivers on tunable pipelines (intra-task DOP,
///    §4.3) using the global remote split set (exchange clients are
///    shared, so a new exchange driver needs no coordinator round trip);
///  - AddRemoteSplits() wires newly created upstream tasks (§4.4 step 3);
///  - EndSignalOutput()/SignalEndSources() implement the end-signal
///    protocol for task teardown.
class Task {
 public:
  Task(TaskSpec spec, TaskApis apis, ResourceGovernor* cpu,
       ResourceGovernor* nic, const EngineConfig* config);
  ~Task();

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  /// Creates the initial drivers and begins execution. Idempotent:
  /// repeated calls (retried StartTask RPCs) are no-ops.
  void Start();

  /// Registers additional upstream tasks for `source_stage_id`.
  void AddRemoteSplits(int source_stage_id,
                       const std::vector<RemoteSplit>& splits);

  /// Sets the driver count of every tunable pipeline (task DOP).
  Status SetDop(int dop);

  /// Sets the driver count of one pipeline.
  Status SetPipelineDop(int pipeline_id, int dop);

  /// Consumer-side page poll on this task's output buffer, resuming at
  /// `start_sequence` (pass OutputBuffer::kAutoSequence for local
  /// consumers that never retry).
  PagesResult GetPages(int buffer_id, int64_t start_sequence, int max_pages);

  /// End signal for one downstream consumer of this task's buffer.
  void EndSignalOutput(int buffer_id);

  /// End signal to all source operators: the task drains and closes
  /// bottom-up (used when the dynamic scheduler removes this task).
  void SignalEndSources();

  /// Hard abort (query cancellation).
  void Abort();

  /// DOP switching support (§4.5): new consumer task group on the output
  /// shuffle buffer, serving ids [first_buffer_id, first_buffer_id+count).
  void AddOutputTaskGroup(int count, int first_buffer_id);
  void SwitchOutputToNewestGroup();

  bool Finished();
  TaskInfo Info();
  OutputBuffer* output_buffer() { return buffer_.get(); }
  TaskContext* context() { return &task_ctx_; }
  const TaskSpec& spec() const { return spec_; }
  const std::vector<Pipeline>& pipelines() const { return pipelines_; }

 private:
  struct DriverSlot {
    std::unique_ptr<Driver> driver;
    bool ended_requested = false;
  };

  void AddDriverLocked(int pipeline_id);
  int AliveDriversLocked(int pipeline_id) const;
  void UpdateStateLocked();

  TaskSpec spec_;
  TaskApis apis_;
  TaskContext task_ctx_;
  std::unique_ptr<OutputBuffer> buffer_;

  // Shared structures (stable addresses; factories hold raw pointers).
  std::map<int, std::unique_ptr<ExchangeClient>> exchange_clients_;
  std::map<int, std::unique_ptr<LocalExchange>> local_exchanges_;
  std::map<int, std::unique_ptr<JoinBridge>> join_bridges_;

  std::vector<Pipeline> pipelines_;

  mutable std::mutex mutex_;
  std::vector<std::vector<DriverSlot>> drivers_;  // per pipeline
  std::vector<int> next_driver_seq_;
  std::atomic<bool> cancelled_{false};
  std::atomic<TaskState> state_{TaskState::kCreated};
};

}  // namespace accordion

#endif  // ACCORDION_EXEC_TASK_H_
