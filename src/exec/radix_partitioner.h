#ifndef ACCORDION_EXEC_RADIX_PARTITIONER_H_
#define ACCORDION_EXEC_RADIX_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "vector/page.h"

namespace accordion {

/// Radix partitioning machinery shared by hash aggregation and the
/// partitioned shuffle write path.
///
/// The aggregation use (the cache-resident group-by path): a driver whose
/// group table outgrows ~L2 splits the hash space into 2^bits partitions
/// by the TOP `bits` of each row hash, buffers rows per partition, and
/// runs one small HashTable per partition. Slot indices use the LOW bits
/// of the same hash, so within a partition the slot distribution stays
/// uniform. Partitions are disjoint by construction, which makes the
/// final merge a plain concatenation of per-partition group emissions.
///
/// The shuffle use: consumer routing is `hash % count` (count is the
/// consumer count, not a power of two) — BuildModuloSelections keeps that
/// assignment bit-for-bit while the scatter itself goes through the same
/// selection-vector machinery.
class RadixPartitioner {
 public:
  /// Smallest number of radix bits (capped at `max_bits`) so that
  /// `expected_groups` distinct keys land at or under
  /// `target_per_partition` per partition.
  static int ChooseBits(int64_t expected_groups, int64_t target_per_partition,
                        int max_bits);

  explicit RadixPartitioner(int bits);

  int bits() const { return bits_; }
  int num_partitions() const { return 1 << bits_; }

  /// Partition of one 64-bit hash: its top `bits` bits.
  int PartitionOf(uint64_t hash) const {
    return static_cast<int>(hash >> shift_);
  }

  /// Splits a batch of row hashes into per-partition selection vectors.
  /// `selections` is resized to num_partitions(); inner vectors are
  /// cleared but keep capacity, so callers can reuse one scratch instance.
  void BuildSelections(const uint64_t* hashes, int64_t n,
                       std::vector<std::vector<int32_t>>* selections) const;

  /// Same, with the shuffle routing function `hash % num_partitions`
  /// (`num_partitions` need not be a power of two).
  static void BuildModuloSelections(
      const uint64_t* hashes, int64_t n, int num_partitions,
      std::vector<std::vector<int32_t>>* selections);

 private:
  int bits_;
  int shift_;  // 64 - bits
};

/// Gathers the rows of `selection` out of `page` into a new page,
/// coalescing runs of consecutive row indices into bulk AppendRange
/// copies (selection vectors from partitioning are ascending, so runs are
/// common when the partition count is small).
PagePtr GatherSelection(const Page& page, const std::vector<int32_t>& selection);

}  // namespace accordion

#endif  // ACCORDION_EXEC_RADIX_PARTITIONER_H_
