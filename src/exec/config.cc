#include "exec/config.h"

namespace accordion {
namespace {

/// Merges one deprecated alias into its canonical MemoryConfig field.
/// `canonical_default` is the field's struct default: a canonical value
/// equal to the default is treated as "not explicitly set", so a lone
/// alias wins; two explicit, different values are a conflict.
Status MergeAlias(const char* name, int64_t* alias, int64_t* canonical,
                  int64_t canonical_default) {
  if (*alias < 0) return Status::OK();
  if (*canonical != canonical_default && *canonical != *alias) {
    return Status::InvalidArgument(
        std::string("EngineConfig::") + name +
        " (deprecated) and EngineConfig::memory." + name +
        " are both set to different values (" + std::to_string(*alias) +
        " vs " + std::to_string(*canonical) + "); set only memory." + name);
  }
  *canonical = *alias;
  *alias = -1;
  return Status::OK();
}

}  // namespace

Status EngineConfig::Normalize() {
  const MemoryConfig defaults;
  ACCORDION_RETURN_NOT_OK(MergeAlias("initial_buffer_bytes",
                                     &initial_buffer_bytes,
                                     &memory.initial_buffer_bytes,
                                     defaults.initial_buffer_bytes));
  ACCORDION_RETURN_NOT_OK(MergeAlias("max_buffer_bytes", &max_buffer_bytes,
                                     &memory.max_buffer_bytes,
                                     defaults.max_buffer_bytes));
  ACCORDION_RETURN_NOT_OK(MergeAlias("fixed_buffer_bytes", &fixed_buffer_bytes,
                                     &memory.fixed_buffer_bytes,
                                     defaults.fixed_buffer_bytes));

  if (memory.initial_buffer_bytes <= 0) {
    return Status::InvalidArgument("memory.initial_buffer_bytes must be > 0");
  }
  if (memory.max_buffer_bytes <= 0) {
    return Status::InvalidArgument("memory.max_buffer_bytes must be > 0");
  }
  if (memory.max_buffer_bytes < memory.initial_buffer_bytes) {
    return Status::InvalidArgument(
        "memory.max_buffer_bytes (" + std::to_string(memory.max_buffer_bytes) +
        ") is below memory.initial_buffer_bytes (" +
        std::to_string(memory.initial_buffer_bytes) + ")");
  }
  if (memory.fixed_buffer_bytes <= 0) {
    return Status::InvalidArgument("memory.fixed_buffer_bytes must be > 0");
  }
  if (memory.worker_memory_bytes < 0) {
    return Status::InvalidArgument("memory.worker_memory_bytes must be >= 0");
  }
  if (memory.query_build_bytes < 0) {
    return Status::InvalidArgument("memory.query_build_bytes must be >= 0");
  }
  if (memory.worker_memory_bytes > 0 && memory.query_build_bytes > 0 &&
      memory.query_build_bytes > memory.worker_memory_bytes) {
    return Status::InvalidArgument(
        "memory.query_build_bytes (" +
        std::to_string(memory.query_build_bytes) +
        ") exceeds memory.worker_memory_bytes (" +
        std::to_string(memory.worker_memory_bytes) + ")");
  }
  if (memory.spill_chunk_bytes <= 0) {
    return Status::InvalidArgument("memory.spill_chunk_bytes must be > 0");
  }

  if (join.radix_min_build_rows < 0) {
    return Status::InvalidArgument("join.radix_min_build_rows must be >= 0");
  }
  if (join.radix_partition_rows <= 0) {
    return Status::InvalidArgument("join.radix_partition_rows must be > 0");
  }
  if (join.radix_max_bits < 0 || join.radix_max_bits > 16) {
    return Status::InvalidArgument("join.radix_max_bits must be in [0, 16]");
  }
  if (join.spill_partition_bits < 1 || join.spill_partition_bits > 10) {
    return Status::InvalidArgument(
        "join.spill_partition_bits must be in [1, 10]");
  }
  if (join.max_spill_recursion < 1) {
    return Status::InvalidArgument("join.max_spill_recursion must be >= 1");
  }
  if (null_injection_rate < 0 || null_injection_rate > 1) {
    return Status::InvalidArgument("null_injection_rate must be in [0, 1]");
  }
  return Status::OK();
}

}  // namespace accordion
