#include "exec/operators.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "exec/hash_table.h"
#include "exec/radix_partitioner.h"

namespace accordion {
namespace {

// ---------------------------------------------------------------------------
// TableScan
// ---------------------------------------------------------------------------

class TableScanOperator : public Operator {
 public:
  TableScanOperator(TaskContext* ctx, NextSplitFn next_split,
                    OpenSplitFn open_split)
      : Operator(ctx),
        next_split_(std::move(next_split)),
        open_split_(std::move(open_split)) {}

  void AddInput(const PagePtr&) override {
    ACC_CHECK(false) << "table scan takes no input";
  }

  PagePtr GetOutput() override {
    if (IsFinished()) return nullptr;
    if (end_signalled_ && source_ == nullptr) return EmitEnd();
    while (true) {
      if (source_ == nullptr) {
        if (end_signalled_) return EmitEnd();
        std::optional<SystemSplit> split = next_split_();
        if (!split.has_value()) return EmitEnd();
        source_ = open_split_(*split);
        if (source_ != nullptr && source_->TotalRows() >= 0) {
          task_ctx_->AddScanTotalRows(source_->TotalRows());
        }
        continue;
      }
      PagePtr page = source_->Next();
      if (page == nullptr) {
        source_.reset();  // split exhausted; try the next one
        continue;
      }
      task_ctx_->AddScanRows(page->num_rows());
      return page;
    }
  }

  void SignalEnd() override { end_signalled_ = true; }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.scan_us;
  }
  std::string Name() const override { return "TableScan"; }

 private:
  NextSplitFn next_split_;
  OpenSplitFn open_split_;
  std::unique_ptr<PageSource> source_;
  bool end_signalled_ = false;
};

class TableScanFactory : public OperatorFactory {
 public:
  TableScanFactory(NextSplitFn next_split, OpenSplitFn open_split)
      : next_split_(std::move(next_split)), open_split_(std::move(open_split)) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<TableScanOperator>(ctx, next_split_, open_split_);
  }
  std::string Name() const override { return "TableScan"; }
  bool IsSource() const override { return true; }

 private:
  NextSplitFn next_split_;
  OpenSplitFn open_split_;
};

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

class ValuesOperator : public Operator {
 public:
  ValuesOperator(TaskContext* ctx, std::vector<PagePtr> pages)
      : Operator(ctx), pages_(std::move(pages)) {}

  void AddInput(const PagePtr&) override {
    ACC_CHECK(false) << "values takes no input";
  }

  PagePtr GetOutput() override {
    if (IsFinished()) return nullptr;
    if (end_signalled_ || cursor_ >= pages_.size()) return EmitEnd();
    return pages_[cursor_++];
  }

  void SignalEnd() override { end_signalled_ = true; }
  double CostPerRowMicros() const override { return 0; }
  std::string Name() const override { return "Values"; }

 private:
  std::vector<PagePtr> pages_;
  size_t cursor_ = 0;
  bool end_signalled_ = false;
};

class ValuesFactory : public OperatorFactory {
 public:
  explicit ValuesFactory(std::vector<PagePtr> pages)
      : pages_(std::move(pages)) {}

  OperatorPtr Create(TaskContext* ctx, int driver_seq) override {
    // All pages go to driver 0; extra drivers see an empty source.
    return std::make_unique<ValuesOperator>(
        ctx, driver_seq == 0 ? pages_ : std::vector<PagePtr>{});
  }
  std::string Name() const override { return "Values"; }
  bool IsSource() const override { return true; }

 private:
  std::vector<PagePtr> pages_;
};

// ---------------------------------------------------------------------------
// Exchange / LocalExchange source
// ---------------------------------------------------------------------------

class ExchangeOperator : public Operator {
 public:
  ExchangeOperator(TaskContext* ctx, ExchangeClient* client)
      : Operator(ctx), client_(client) {}

  void AddInput(const PagePtr&) override {
    ACC_CHECK(false) << "exchange takes no input";
  }

  PagePtr GetOutput() override {
    if (IsFinished()) return nullptr;
    if (end_signalled_) return EmitEnd();
    PagePtr page = client_->Poll();
    if (page == nullptr) return nullptr;
    if (page->IsEnd()) return EmitEnd();
    return page;
  }

  void SignalEnd() override { end_signalled_ = true; }
  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.exchange_us;
  }
  std::string Name() const override { return "Exchange"; }

 private:
  ExchangeClient* client_;
  bool end_signalled_ = false;
};

class ExchangeFactory : public OperatorFactory {
 public:
  explicit ExchangeFactory(ExchangeClient* client) : client_(client) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<ExchangeOperator>(ctx, client_);
  }
  std::string Name() const override { return "Exchange"; }
  bool IsSource() const override { return true; }

 private:
  ExchangeClient* client_;
};

class LocalExchangeSourceOperator : public Operator {
 public:
  LocalExchangeSourceOperator(TaskContext* ctx, LocalExchange* exchange)
      : Operator(ctx), exchange_(exchange) {}

  void AddInput(const PagePtr&) override {
    ACC_CHECK(false) << "local exchange source takes no input";
  }

  PagePtr GetOutput() override {
    if (IsFinished()) return nullptr;
    if (end_signalled_) return EmitEnd();
    PagePtr page = exchange_->Poll();
    if (page == nullptr) return nullptr;
    if (page->IsEnd()) return EmitEnd();
    return page;
  }

  void SignalEnd() override { end_signalled_ = true; }
  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.local_exchange_us;
  }
  std::string Name() const override { return "LocalExchangeSource"; }

 private:
  LocalExchange* exchange_;
  bool end_signalled_ = false;
};

class LocalExchangeSourceFactory : public OperatorFactory {
 public:
  explicit LocalExchangeSourceFactory(LocalExchange* exchange)
      : exchange_(exchange) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<LocalExchangeSourceOperator>(ctx, exchange_);
  }
  std::string Name() const override { return "LocalExchangeSource"; }
  bool IsSource() const override { return true; }

 private:
  LocalExchange* exchange_;
};

// ---------------------------------------------------------------------------
// Filter / Project
// ---------------------------------------------------------------------------

class FilterOperator : public Operator {
 public:
  FilterOperator(TaskContext* ctx, ExprPtr predicate)
      : Operator(ctx), predicate_(std::move(predicate)) {}

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && pending_ == nullptr;
  }

  void AddInput(const PagePtr& page) override {
    std::vector<int32_t> selected = FilterRows(*predicate_, *page);
    if (selected.empty()) return;
    if (static_cast<int64_t>(selected.size()) == page->num_rows()) {
      pending_ = page;
    } else {
      pending_ = page->Select(selected);
    }
  }

  PagePtr GetOutput() override {
    if (pending_ != nullptr) {
      PagePtr out = pending_;
      pending_ = nullptr;
      return out;
    }
    if (state_ == OperatorState::kFinishing) return EmitEnd();
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.filter_us;
  }
  std::string Name() const override { return "Filter"; }

 private:
  ExprPtr predicate_;
  PagePtr pending_;
};

class FilterFactory : public OperatorFactory {
 public:
  explicit FilterFactory(ExprPtr predicate) : predicate_(std::move(predicate)) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<FilterOperator>(ctx, predicate_);
  }
  std::string Name() const override { return "Filter"; }

 private:
  ExprPtr predicate_;
};

class ProjectOperator : public Operator {
 public:
  ProjectOperator(TaskContext* ctx, std::vector<ExprPtr> exprs)
      : Operator(ctx), exprs_(std::move(exprs)) {}

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && pending_ == nullptr;
  }

  void AddInput(const PagePtr& page) override {
    std::vector<ColumnPtr> cols;
    cols.reserve(exprs_.size());
    // EvalShared lets plain column references pass through the page's
    // buffers untouched; computed expressions materialize once.
    for (const auto& e : exprs_) cols.push_back(e->EvalShared(*page));
    pending_ = Page::MakeShared(std::move(cols));
  }

  PagePtr GetOutput() override {
    if (pending_ != nullptr) {
      PagePtr out = pending_;
      pending_ = nullptr;
      return out;
    }
    if (state_ == OperatorState::kFinishing) return EmitEnd();
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.project_us;
  }
  std::string Name() const override { return "Project"; }

 private:
  std::vector<ExprPtr> exprs_;
  PagePtr pending_;
};

class ProjectFactory : public OperatorFactory {
 public:
  explicit ProjectFactory(std::vector<ExprPtr> exprs)
      : exprs_(std::move(exprs)) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<ProjectOperator>(ctx, exprs_);
  }
  std::string Name() const override { return "Project"; }

 private:
  std::vector<ExprPtr> exprs_;
};

// ---------------------------------------------------------------------------
// LookupJoin (probe side of the hash join)
// ---------------------------------------------------------------------------

class LookupJoinOperator : public Operator {
 public:
  LookupJoinOperator(TaskContext* ctx, JoinBridge* bridge,
                     std::vector<int> probe_keys,
                     std::vector<int> build_output_channels,
                     JoinType join_type)
      : Operator(ctx),
        bridge_(bridge),
        probe_keys_(std::move(probe_keys)),
        build_output_channels_(std::move(build_output_channels)),
        join_type_(join_type) {
    bridge_->AddProbeDriver();
  }

  bool NeedsInput() const override {
    // Paper §4.1: probing waits for the build side to complete.
    return state_ == OperatorState::kRunning && bridge_->built() &&
           pending_.empty();
  }

  void AddInput(const PagePtr& page) override {
    probe_rows_.clear();
    build_rows_.clear();
    Status probed =
        bridge_->Probe(*page, probe_keys_, &probe_rows_, &build_rows_);
    if (!probed.ok()) {
      task_ctx_->ReportFailure(probed);
      return;
    }
    // Spill mode returns no pairs: every variant's output streams from the
    // bridge drain after the last probe driver retires.
    if (bridge_->spilled()) return;
    if (!variant_init_) {
      variant_init_ = true;
      build_empty_ = bridge_->build_rows() == 0;
      build_has_null_ = bridge_->build_has_null_key();
    }
    switch (join_type_) {
      case JoinType::kInner:
      case JoinType::kRight:
        // Right joins emit their matched pairs here; the unmatched build
        // rows stream from the bridge drain (null-padded on the probe side).
        if (!probe_rows_.empty()) EmitPairs(*page);
        return;
      case JoinType::kLeft:
      case JoinType::kFull: {
        // Append one (row, -1) pair per unmatched probe row; the nullable
        // gather turns build id -1 into NULL padding.
        FillMatchedFlags(page->num_rows());
        for (int64_t r = 0; r < page->num_rows(); ++r) {
          if (matched_[r] == 0) {
            probe_rows_.push_back(static_cast<int32_t>(r));
            build_rows_.push_back(-1);
          }
        }
        if (!probe_rows_.empty()) EmitPairs(*page);
        return;
      }
      case JoinType::kLeftSemi: {
        FillMatchedFlags(page->num_rows());
        std::vector<int32_t> sel;
        for (int64_t r = 0; r < page->num_rows(); ++r) {
          if (matched_[r] != 0) sel.push_back(static_cast<int32_t>(r));
        }
        if (!sel.empty()) pending_.push_back(page->Select(sel));
        return;
      }
      case JoinType::kLeftAnti: {
        // Plain anti join: NULL-keyed probe rows never match, so they
        // qualify (NOT EXISTS semantics).
        FillMatchedFlags(page->num_rows());
        std::vector<int32_t> sel;
        for (int64_t r = 0; r < page->num_rows(); ++r) {
          if (matched_[r] == 0) sel.push_back(static_cast<int32_t>(r));
        }
        if (!sel.empty()) pending_.push_back(page->Select(sel));
        return;
      }
      case JoinType::kNullAwareAnti: {
        // NOT IN: any NULL in the build set makes every miss compare to
        // NULL — nothing qualifies. An empty build set means NOT IN ()
        // which is TRUE for every row, NULL-keyed ones included.
        if (build_has_null_) return;
        if (build_empty_) {
          pending_.push_back(page);
          return;
        }
        FillMatchedFlags(page->num_rows());
        std::vector<int32_t> sel;
        for (int64_t r = 0; r < page->num_rows(); ++r) {
          if (matched_[r] != 0) continue;
          if (ProbeRowHasNullKey(*page, r)) continue;  // NULL NOT IN (...) is NULL
          sel.push_back(static_cast<int32_t>(r));
        }
        if (!sel.empty()) pending_.push_back(page->Select(sel));
        return;
      }
      case JoinType::kMark: {
        FillMatchedFlags(page->num_rows());
        std::vector<ColumnPtr> cols;
        cols.reserve(page->num_columns() + 1);
        for (int c = 0; c < page->num_columns(); ++c) {
          cols.push_back(page->shared_column(c));
        }
        auto mark = std::make_shared<Column>(DataType::kBool);
        mark->Reserve(page->num_rows());
        for (int64_t r = 0; r < page->num_rows(); ++r) {
          if (matched_[r] != 0) {
            mark->AppendInt(1);
          } else if (build_empty_) {
            mark->AppendInt(0);  // x IN () is FALSE even for NULL x
          } else if (build_has_null_ || ProbeRowHasNullKey(*page, r)) {
            mark->AppendNull();  // miss with a NULL on either side: unknown
          } else {
            mark->AppendInt(0);
          }
        }
        cols.push_back(std::move(mark));
        pending_.push_back(Page::MakeShared(std::move(cols)));
        return;
      }
    }
  }

  PagePtr GetOutput() override {
    if (!pending_.empty()) {
      PagePtr out = pending_.front();
      pending_.pop_front();
      return out;
    }
    if (state_ != OperatorState::kFinishing) return nullptr;
    // When the bridge spilled, the last probe driver to retire becomes the
    // drainer and streams the partition-pairwise grace join from here.
    if (!probe_retired_) {
      probe_retired_ = true;
      draining_ = bridge_->ProbeDriverFinished();
    }
    if (draining_) {
      Result<PagePtr> next =
          bridge_->NextSpilledPage(probe_keys_, build_output_channels_);
      if (!next.ok()) {
        task_ctx_->ReportFailure(next.status());
        draining_ = false;
        return EmitEnd();
      }
      PagePtr page = std::move(next).value();
      if (page != nullptr) return page;
      draining_ = false;
    }
    return EmitEnd();
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.probe_us;
  }
  std::string Name() const override { return "LookupJoin"; }

 private:
  /// Emits the accumulated (probe row, build row) pairs in bounded chunks.
  /// Output columns are gathered directly from the match spans — no
  /// intermediate Select page or column copies. A build row of -1 gathers
  /// as NULL (left/full padding).
  void EmitPairs(const Page& page) {
    const bool nullable = join_type_ == JoinType::kLeft ||
                          join_type_ == JoinType::kFull;
    const int64_t total = static_cast<int64_t>(probe_rows_.size());
    const int64_t chunk = task_ctx_->config().batch_rows * 4;
    for (int64_t off = 0; off < total; off += chunk) {
      int64_t count = std::min(chunk, total - off);
      std::vector<Column> cols;
      cols.reserve(page.num_columns() + build_output_channels_.size());
      for (int c = 0; c < page.num_columns(); ++c) {
        cols.push_back(page.column(c).Gather(probe_rows_.data() + off, count));
      }
      for (int ch : build_output_channels_) {
        cols.push_back(
            nullable
                ? bridge_->GatherBuildNullable(ch, build_rows_.data() + off,
                                               count)
                : bridge_->GatherBuild(ch, build_rows_.data() + off, count));
      }
      pending_.push_back(Page::Make(std::move(cols)));
    }
  }

  /// matched_[r] = 1 iff probe row r appears in the current match pairs.
  void FillMatchedFlags(int64_t num_rows) {
    matched_.assign(static_cast<size_t>(num_rows), 0);
    for (int32_t r : probe_rows_) matched_[r] = 1;
  }

  bool ProbeRowHasNullKey(const Page& page, int64_t row) const {
    for (int ch : probe_keys_) {
      if (page.column(ch).IsNull(row)) return true;
    }
    return false;
  }

  JoinBridge* bridge_;
  std::vector<int> probe_keys_;
  std::vector<int> build_output_channels_;
  JoinType join_type_;
  std::deque<PagePtr> pending_;
  bool probe_retired_ = false;
  bool draining_ = false;
  // Build-side facts cached on first probe (stable once built).
  bool variant_init_ = false;
  bool build_empty_ = false;
  bool build_has_null_ = false;
  // Reused match buffers — cleared per input page, capacity retained.
  std::vector<int32_t> probe_rows_;
  std::vector<int64_t> build_rows_;
  std::vector<uint8_t> matched_;
};

class LookupJoinFactory : public OperatorFactory {
 public:
  LookupJoinFactory(JoinBridge* bridge, std::vector<int> probe_keys,
                    std::vector<int> build_output_channels, JoinType join_type)
      : bridge_(bridge),
        probe_keys_(std::move(probe_keys)),
        build_output_channels_(std::move(build_output_channels)),
        join_type_(join_type) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<LookupJoinOperator>(
        ctx, bridge_, probe_keys_, build_output_channels_, join_type_);
  }
  std::string Name() const override { return "LookupJoin"; }

 private:
  JoinBridge* bridge_;
  std::vector<int> probe_keys_;
  std::vector<int> build_output_channels_;
  JoinType join_type_;
};

// ---------------------------------------------------------------------------
// Aggregation (partial + final share the accumulator machinery)
// ---------------------------------------------------------------------------

/// Hot accumulator word pair: count/sum/avg state. 16 bytes, so the
/// randomly-indexed states array stays dense — min/max carry their Value
/// payload in a separate cold array that only those aggregates touch.
struct AccNum {
  int64_t i = 0;
  double d = 0;
};

/// Min/max accumulator (cold path): current extremum + seen flag.
struct AccVal {
  Value v;
  bool has = false;
};

/// Base for both aggregation phases; subclasses define how a batch updates
/// states and how group results are emitted.
///
/// Groups live in a flat open-addressing HashTable that assigns dense,
/// first-seen group ids and stores the key tuples columnar; accumulators
/// live in one contiguous vector indexed `group_id * num_aggs + agg`.
/// Input pages are consumed batch-at-a-time: one HashRows pass, one id
/// resolution pass, then column-wise accumulator updates — no per-row key
/// string or per-group heap allocations.
///
/// Cardinality has two regimes. Below `radix_agg_min_groups` everything
/// lives in one table + one states vector (the fast path — nothing
/// changes for low-group queries). Once a driver observes more distinct
/// keys than that, the operator switches to radix-partitioned mode: rows
/// are split by the top radix bits of their key hash into 2^k partitions,
/// buffered per partition, and drained through one small table + states
/// vector per partition, so the randomly-accessed working set stays
/// roughly L2-sized no matter how many groups accumulate. k is chosen
/// from the observed cardinality and escalates (re-splitting the existing
/// partitions) if distinct keys keep growing past the partition budget.
/// Partitions are disjoint in key space, so finalization just emits them
/// one after another — no cross-partition merge step.
class AggOperatorBase : public Operator {
 public:
  AggOperatorBase(TaskContext* ctx, std::vector<int> group_by,
                  std::vector<Aggregate> aggs,
                  std::vector<DataType> input_types)
      : Operator(ctx),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)),
        input_types_(std::move(input_types)),
        table_(HashTable::SelectKeyTypes(input_types_, group_by_)) {
    val_index_.reserve(aggs_.size());
    for (const Aggregate& agg : aggs_) {
      bool is_minmax = agg.func == AggFunc::kMin || agg.func == AggFunc::kMax;
      val_index_.push_back(is_minmax ? num_val_aggs_++ : -1);
    }
  }

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && pending_.empty();
  }

  void AddInput(const PagePtr& page) override {
    if (radix_ == nullptr) {
      table_.LookupOrInsert(*page, group_by_, &group_ids_);
      states_.resize(static_cast<size_t>(table_.size()) * aggs_.size());
      if (num_val_aggs_ > 0) {
        val_states_.resize(static_cast<size_t>(table_.size()) * num_val_aggs_);
      }
      col_ptrs_.clear();
      for (int c = 0; c < page->num_columns(); ++c) {
        col_ptrs_.push_back(&page->column(c));
      }
      UpdateBatch(col_ptrs_, page->num_rows(), group_ids_.data(),
                  states_.data(), val_states_.data());
      const int64_t min_groups = task_ctx_->config().radix_agg_min_groups;
      if (min_groups > 0 && !group_by_.empty() && table_.size() >= min_groups) {
        SwitchToRadix();
      }
    } else {
      RadixAdd(*page);
    }
    MaybeFlush();
  }

  PagePtr GetOutput() override {
    if (!pending_.empty()) {
      PagePtr out = pending_.front();
      pending_.pop_front();
      return out;
    }
    if (state_ == OperatorState::kFinishing) {
      FlushAll();
      if (!pending_.empty()) {
        PagePtr out = pending_.front();
        pending_.pop_front();
        return out;
      }
      return EmitEnd();
    }
    return nullptr;
  }

 protected:
  /// Updates accumulators for a batch: `cols` is indexed by input channel,
  /// `ids[i]` is row i's dense group id. `states` is the hot numeric array
  /// (`[id * num_aggs + a]`), `vals` the min/max array
  /// (`[id * num_val_aggs_ + val_index_[a]]`).
  virtual void UpdateBatch(const std::vector<const Column*>& cols, int64_t n,
                           const int64_t* ids, AccNum* states,
                           AccVal* vals) = 0;
  virtual std::vector<DataType> OutputTypes() const = 0;
  /// Appends the per-agg result columns for groups [begin, end) of
  /// `states`/`vals` to `cols[group_by_.size()...]` (keys are already
  /// appended).
  virtual void EmitStates(const AccNum* states, const AccVal* vals,
                          int64_t begin, int64_t end,
                          std::vector<Column>* cols) = 0;
  /// Partial aggregation flushes early (destroy-and-rebuild, §4.1);
  /// final aggregation never does.
  virtual void MaybeFlush() {}
  /// Emit a default row when there are no groups and no GROUP BY keys?
  virtual bool EmitEmptyGroup() const { return false; }

  /// Distinct groups observed so far (all partitions, or the one table).
  int64_t NumGroups() const { return radix_ ? num_groups_ : table_.size(); }

  /// Hide the latency of the randomly-indexed states access behind the
  /// row loop, like the hash table does for its slots.
  static constexpr int64_t kStatePrefetch = 16;

  /// Min/max accumulation shared by both phases; typed loops for the
  /// numeric cases, string compare without Value round-trips.
  void UpdateMinMax(const Column& col, int64_t n, const int64_t* ids, int vi,
                    bool is_max, AccVal* vals) {
    const int64_t stride = num_val_aggs_;
    // NULL inputs update nothing; an all-NULL group keeps has == false and
    // emits as NULL (also how partial all-NULL states pass through final).
    const uint8_t* valid =
        col.may_have_nulls() ? col.validity().data() : nullptr;
    switch (col.type()) {
      case DataType::kString:
        for (int64_t i = 0; i < n; ++i) {
          if (valid != nullptr && valid[i] == 0) continue;
          AccVal& st = vals[ids[i] * stride + vi];
          const std::string& s = col.StrAt(i);
          if (!st.has || (is_max ? s > st.v.str : s < st.v.str)) {
            st.v.type = DataType::kString;
            st.v.str = s;
            st.has = true;
          }
        }
        break;
      case DataType::kDouble: {
        const double* v = col.doubles().data();
        for (int64_t i = 0; i < n; ++i) {
          if (valid != nullptr && valid[i] == 0) continue;
          AccVal& st = vals[ids[i] * stride + vi];
          if (!st.has || (is_max ? v[i] > st.v.f64 : v[i] < st.v.f64)) {
            st.v.type = DataType::kDouble;
            st.v.f64 = v[i];
            st.has = true;
          }
        }
        break;
      }
      default: {
        const int64_t* v = col.ints().data();
        const DataType t = col.type();
        for (int64_t i = 0; i < n; ++i) {
          if (valid != nullptr && valid[i] == 0) continue;
          AccVal& st = vals[ids[i] * stride + vi];
          if (!st.has || (is_max ? v[i] > st.v.i64 : v[i] < st.v.i64)) {
            st.v.type = t;
            st.v.i64 = v[i];
            st.has = true;
          }
        }
        break;
      }
    }
  }

  void FlushAll() {
    if (flushed_all_) return;
    flushed_all_ = true;
    if (NumGroups() == 0 && group_by_.empty() && EmitEmptyGroup()) {
      // Zero input rows, global aggregation: emit the default row.
      states_.assign(aggs_.size(), AccNum{});
      val_states_.assign(num_val_aggs_, AccVal{});
      std::vector<DataType> types = OutputTypes();
      std::vector<Column> cols;
      cols.reserve(types.size());
      for (DataType t : types) cols.emplace_back(t);
      EmitStates(states_.data(), val_states_.data(), 0, 1, &cols);
      pending_.push_back(Page::Make(std::move(cols)));
      states_.clear();
      val_states_.clear();
      return;
    }
    EmitGroups();
  }

  void EmitGroups() {
    if (radix_ == nullptr) {
      EmitTable(table_, states_, val_states_);
      table_.Clear();
      states_.clear();
      val_states_.clear();
      return;
    }
    // Partitions cover disjoint key ranges: emitting them back to back IS
    // the partition-wise merge. The partition layout is kept for further
    // input (partial-agg flush cycles at steady cardinality).
    const int parts = radix_->partitioner.num_partitions();
    for (int p = 0; p < parts; ++p) DrainPartition(p);
    for (auto& part : radix_->parts) {
      EmitTable(part.table, part.states, part.val_states);
      part.table.Clear();
      part.states.clear();
      part.val_states.clear();
    }
    num_groups_ = 0;
  }

  std::vector<int> group_by_;
  std::vector<Aggregate> aggs_;
  std::vector<DataType> input_types_;
  HashTable table_;
  std::vector<AccNum> states_;      // group-major: [group_id * num_aggs + a]
  std::vector<AccVal> val_states_;  // [group_id * num_val_aggs_ + val_index]
  std::vector<int> val_index_;      // agg index -> min/max slot, or -1
  int num_val_aggs_ = 0;
  std::vector<int64_t> group_ids_;  // per-input-page scratch
  std::deque<PagePtr> pending_;
  bool flushed_all_ = false;

 private:
  /// One radix partition: a small hash table, its accumulators, and the
  /// buffered not-yet-drained input rows (all input channels + their
  /// precomputed row hashes).
  struct RadixPartition {
    RadixPartition(const std::vector<DataType>& key_types,
                   const std::vector<DataType>& input_types)
        : table(key_types) {
      buffer.reserve(input_types.size());
      for (DataType t : input_types) buffer.emplace_back(t);
    }
    HashTable table;
    std::vector<AccNum> states;
    std::vector<AccVal> val_states;
    std::vector<Column> buffer;
    std::vector<uint64_t> hash_buffer;
  };

  struct RadixState {
    RadixState(int bits, const std::vector<DataType>& key_types,
               const std::vector<DataType>& input_types)
        : partitioner(bits) {
      parts.reserve(static_cast<size_t>(partitioner.num_partitions()));
      for (int p = 0; p < partitioner.num_partitions(); ++p) {
        parts.emplace_back(key_types, input_types);
      }
    }
    RadixPartitioner partitioner;
    std::vector<RadixPartition> parts;
  };

  void SwitchToRadix() {
    const EngineConfig& cfg = task_ctx_->config();
    int bits = std::max(
        1, RadixPartitioner::ChooseBits(table_.size() * 4,
                                        cfg.radix_agg_partition_groups,
                                        cfg.radix_agg_max_bits));
    radix_ = std::make_unique<RadixState>(bits, table_.key_types(),
                                          input_types_);
    num_groups_ = 0;
    MigrateTable(&table_, &states_, &val_states_);
    table_.Clear();
    // Release, not just clear: these vectors were LLC-sized.
    states_ = {};
    val_states_ = {};
  }

  void RadixAdd(const Page& page) {
    const int64_t n = page.num_rows();
    page.HashRows(group_by_, &hash_scratch_);
    radix_->partitioner.BuildSelections(hash_scratch_.data(), n, &selections_);
    const int64_t drain_rows = task_ctx_->config().radix_agg_drain_rows;
    const int num_channels = page.num_columns();
    const int parts = radix_->partitioner.num_partitions();
    for (int p = 0; p < parts; ++p) {
      const std::vector<int32_t>& sel = selections_[p];
      if (sel.empty()) continue;
      const int64_t count = static_cast<int64_t>(sel.size());
      RadixPartition& part = radix_->parts[p];
      for (int c = 0; c < num_channels; ++c) {
        part.buffer[c].AppendGather(page.column(c), sel.data(), count);
      }
      size_t old = part.hash_buffer.size();
      part.hash_buffer.resize(old + static_cast<size_t>(count));
      for (int64_t j = 0; j < count; ++j) {
        part.hash_buffer[old + j] = hash_scratch_[sel[j]];
      }
      if (part.buffer[0].size() >= drain_rows) DrainPartition(p);
    }
    MaybeResplit();
  }

  void DrainPartition(int p) {
    RadixPartition& part = radix_->parts[p];
    const int64_t n = part.buffer.empty() ? 0 : part.buffer[0].size();
    if (n == 0) return;
    key_ptrs_.clear();
    for (int ch : group_by_) key_ptrs_.push_back(&part.buffer[ch]);
    const int64_t before = part.table.size();
    part.table.LookupOrInsertHashed(key_ptrs_, n, part.hash_buffer.data(),
                                    &group_ids_);
    part.states.resize(static_cast<size_t>(part.table.size()) * aggs_.size());
    if (num_val_aggs_ > 0) {
      part.val_states.resize(static_cast<size_t>(part.table.size()) *
                             num_val_aggs_);
    }
    col_ptrs_.clear();
    for (const Column& col : part.buffer) col_ptrs_.push_back(&col);
    UpdateBatch(col_ptrs_, n, group_ids_.data(), part.states.data(),
                part.val_states.data());
    num_groups_ += part.table.size() - before;
    for (Column& col : part.buffer) col.Clear();
    part.hash_buffer.clear();
  }

  /// Re-splits to more partitions when observed distinct keys outgrow the
  /// current layout's budget (the adaptive-k escalation).
  void MaybeResplit() {
    const EngineConfig& cfg = task_ctx_->config();
    const int cur_bits = radix_->partitioner.bits();
    if (cur_bits >= cfg.radix_agg_max_bits) return;
    const int64_t budget = static_cast<int64_t>(radix_->partitioner.num_partitions()) *
                           cfg.radix_agg_partition_groups;
    if (num_groups_ <= budget) return;
    int bits = RadixPartitioner::ChooseBits(num_groups_ * 4,
                                            cfg.radix_agg_partition_groups,
                                            cfg.radix_agg_max_bits);
    if (bits <= cur_bits) return;
    const int old_parts = radix_->partitioner.num_partitions();
    for (int p = 0; p < old_parts; ++p) DrainPartition(p);
    std::unique_ptr<RadixState> old = std::move(radix_);
    radix_ = std::make_unique<RadixState>(bits, table_.key_types(),
                                          input_types_);
    num_groups_ = 0;
    for (RadixPartition& part : old->parts) {
      MigrateTable(&part.table, &part.states, &part.val_states);
    }
  }

  /// Moves every group of `table` (keys + accumulators) into the radix
  /// partitions owning its hash. Used on the initial switch (from the
  /// single table) and on re-splits (from each old partition).
  void MigrateTable(HashTable* table, std::vector<AccNum>* states,
                    std::vector<AccVal>* vals) {
    const int64_t total = table->size();
    if (total == 0) return;
    const int64_t num_aggs = static_cast<int64_t>(aggs_.size());
    // Re-materialize the canonical keys and rehash them; HashInto over the
    // key columns in group-by order matches Page::HashRows bit-for-bit.
    std::vector<Column> key_cols;
    key_cols.reserve(table->key_types().size());
    for (DataType t : table->key_types()) key_cols.emplace_back(t);
    table->AppendKeys(0, total, &key_cols);
    std::vector<uint64_t> hashes(static_cast<size_t>(total), Page::kHashSeed);
    for (const Column& col : key_cols) col.HashInto(&hashes);
    radix_->partitioner.BuildSelections(hashes.data(), total, &selections_);
    const int parts = radix_->partitioner.num_partitions();
    std::vector<Column> gathered;
    std::vector<uint64_t> gathered_hashes;
    for (int p = 0; p < parts; ++p) {
      const std::vector<int32_t>& sel = selections_[p];
      if (sel.empty()) continue;
      const int64_t count = static_cast<int64_t>(sel.size());
      gathered.clear();
      key_ptrs_.clear();
      for (const Column& col : key_cols) {
        gathered.push_back(col.Gather(sel.data(), count));
      }
      for (const Column& col : gathered) key_ptrs_.push_back(&col);
      gathered_hashes.resize(static_cast<size_t>(count));
      for (int64_t j = 0; j < count; ++j) gathered_hashes[j] = hashes[sel[j]];
      RadixPartition& part = radix_->parts[p];
      const int64_t before = part.table.size();
      part.table.LookupOrInsertHashed(key_ptrs_, count, gathered_hashes.data(),
                                      &group_ids_);
      part.states.resize(static_cast<size_t>(part.table.size()) * num_aggs);
      if (num_val_aggs_ > 0) {
        part.val_states.resize(static_cast<size_t>(part.table.size()) *
                               num_val_aggs_);
      }
      // Keys are distinct, so each row got a fresh dense id; move states.
      for (int64_t j = 0; j < count; ++j) {
        AccNum* dst = part.states.data() + group_ids_[j] * num_aggs;
        const AccNum* src = states->data() + sel[j] * num_aggs;
        for (int64_t a = 0; a < num_aggs; ++a) dst[a] = src[a];
        if (num_val_aggs_ > 0) {
          AccVal* vdst = part.val_states.data() + group_ids_[j] * num_val_aggs_;
          AccVal* vsrc = vals->data() + sel[j] * num_val_aggs_;
          for (int v = 0; v < num_val_aggs_; ++v) vdst[v] = std::move(vsrc[v]);
        }
      }
      num_groups_ += part.table.size() - before;
    }
  }

  void EmitTable(const HashTable& table, const std::vector<AccNum>& states,
                 const std::vector<AccVal>& vals) {
    const int64_t total = table.size();
    if (total == 0) return;
    std::vector<DataType> types = OutputTypes();
    const int64_t max_rows = task_ctx_->config().batch_rows * 4;
    for (int64_t begin = 0; begin < total; begin += max_rows) {
      int64_t end = std::min(total, begin + max_rows);
      std::vector<Column> cols;
      cols.reserve(types.size());
      for (DataType t : types) cols.emplace_back(t);
      table.AppendKeys(begin, end, &cols);
      EmitStates(states.data(), vals.data(), begin, end, &cols);
      pending_.push_back(Page::Make(std::move(cols)));
    }
  }

  std::unique_ptr<RadixState> radix_;
  int64_t num_groups_ = 0;  // drained groups across partitions (radix mode)
  // Reused per-page scratch.
  std::vector<uint64_t> hash_scratch_;
  std::vector<std::vector<int32_t>> selections_;
  std::vector<const Column*> col_ptrs_;
  std::vector<const Column*> key_ptrs_;
};

class PartialAggOperator : public AggOperatorBase {
 public:
  using AggOperatorBase::AggOperatorBase;

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.partial_agg_us;
  }
  std::string Name() const override { return "PartialAggregation"; }

 protected:
  void UpdateBatch(const std::vector<const Column*>& cols, int64_t n,
                   const int64_t* ids, AccNum* states, AccVal* vals) override {
    const size_t num_aggs = aggs_.size();
    for (size_t a = 0; a < num_aggs; ++a) {
      const Aggregate& agg = aggs_[a];
      // Null-skipping (SQL aggregate semantics): a NULL input row updates
      // nothing. The all-valid hot loops stay branch-free; `valid` is only
      // consulted when the input column actually carries a validity buffer.
      const Column* in =
          agg.input_channel >= 0 ? cols[agg.input_channel] : nullptr;
      const uint8_t* valid = (in != nullptr && in->may_have_nulls())
                                 ? in->validity().data()
                                 : nullptr;
      switch (agg.func) {
        case AggFunc::kCount:
          // COUNT(*) counts rows; COUNT(col) counts non-NULL values.
          if (valid != nullptr) {
            for (int64_t i = 0; i < n; ++i) {
              states[ids[i] * num_aggs + a].i += valid[i];
            }
          } else {
            for (int64_t i = 0; i < n; ++i) {
              if (i + kStatePrefetch < n) {
                __builtin_prefetch(&states[ids[i + kStatePrefetch] * num_aggs]);
              }
              states[ids[i] * num_aggs + a].i += 1;
            }
          }
          break;
        case AggFunc::kSum: {
          const Column& col = *in;
          // The unused AccNum word counts non-NULL inputs so an all-NULL
          // group can surface as a NULL sum.
          if (agg.ResultType() == DataType::kInt64) {
            const int64_t* v = col.ints().data();
            for (int64_t i = 0; i < n; ++i) {
              if (i + kStatePrefetch < n) {
                __builtin_prefetch(&states[ids[i + kStatePrefetch] * num_aggs]);
              }
              if (valid != nullptr && valid[i] == 0) continue;
              AccNum& st = states[ids[i] * num_aggs + a];
              st.i += v[i];
              st.d += 1.0;
            }
          } else if (col.type() == DataType::kDouble) {
            const double* v = col.doubles().data();
            for (int64_t i = 0; i < n; ++i) {
              if (i + kStatePrefetch < n) {
                __builtin_prefetch(&states[ids[i + kStatePrefetch] * num_aggs]);
              }
              if (valid != nullptr && valid[i] == 0) continue;
              AccNum& st = states[ids[i] * num_aggs + a];
              st.d += v[i];
              st.i += 1;
            }
          } else {
            const int64_t* v = col.ints().data();
            for (int64_t i = 0; i < n; ++i) {
              if (i + kStatePrefetch < n) {
                __builtin_prefetch(&states[ids[i + kStatePrefetch] * num_aggs]);
              }
              if (valid != nullptr && valid[i] == 0) continue;
              AccNum& st = states[ids[i] * num_aggs + a];
              st.d += static_cast<double>(v[i]);
              st.i += 1;
            }
          }
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax:
          UpdateMinMax(*in, n, ids, val_index_[a], agg.func == AggFunc::kMax,
                       vals);
          break;
        case AggFunc::kAvg: {
          const Column& col = *in;
          if (col.type() == DataType::kDouble) {
            const double* v = col.doubles().data();
            for (int64_t i = 0; i < n; ++i) {
              if (i + kStatePrefetch < n) {
                __builtin_prefetch(&states[ids[i + kStatePrefetch] * num_aggs]);
              }
              if (valid != nullptr && valid[i] == 0) continue;
              AccNum& st = states[ids[i] * num_aggs + a];
              st.d += v[i];
              st.i += 1;
            }
          } else {
            const int64_t* v = col.ints().data();
            for (int64_t i = 0; i < n; ++i) {
              if (i + kStatePrefetch < n) {
                __builtin_prefetch(&states[ids[i + kStatePrefetch] * num_aggs]);
              }
              if (valid != nullptr && valid[i] == 0) continue;
              AccNum& st = states[ids[i] * num_aggs + a];
              st.d += static_cast<double>(v[i]);
              st.i += 1;
            }
          }
          break;
        }
      }
    }
  }

  std::vector<DataType> OutputTypes() const override {
    std::vector<DataType> types;
    for (int ch : group_by_) types.push_back(input_types_[ch]);
    for (const auto& agg : aggs_) {
      switch (agg.func) {
        case AggFunc::kCount:
          types.push_back(DataType::kInt64);
          break;
        case AggFunc::kSum:
          types.push_back(agg.ResultType());
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          types.push_back(agg.input_type);
          break;
        case AggFunc::kAvg:
          types.push_back(DataType::kDouble);
          types.push_back(DataType::kInt64);
          break;
      }
    }
    return types;
  }

  void EmitStates(const AccNum* states, const AccVal* vals, int64_t begin,
                  int64_t end, std::vector<Column>* cols) override {
    const size_t num_aggs = aggs_.size();
    const int64_t count = end - begin;
    size_t c = group_by_.size();
    for (size_t a = 0; a < num_aggs; ++a) {
      const Aggregate& agg = aggs_[a];
      switch (agg.func) {
        case AggFunc::kCount: {
          Column& col = (*cols)[c++];
          col.Reserve(col.size() + count);
          for (int64_t g = begin; g < end; ++g) {
            col.AppendInt(states[g * num_aggs + a].i);
          }
          break;
        }
        case AggFunc::kSum: {
          // A group whose every input was NULL has a NULL sum; the spare
          // AccNum word counted the non-NULL inputs.
          Column& col = (*cols)[c++];
          col.Reserve(col.size() + count);
          if (agg.ResultType() == DataType::kInt64) {
            for (int64_t g = begin; g < end; ++g) {
              const AccNum& st = states[g * num_aggs + a];
              if (st.d == 0) {
                col.AppendNull();
              } else {
                col.AppendInt(st.i);
              }
            }
          } else {
            for (int64_t g = begin; g < end; ++g) {
              const AccNum& st = states[g * num_aggs + a];
              if (st.i == 0) {
                col.AppendNull();
              } else {
                col.AppendDouble(st.d);
              }
            }
          }
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax: {
          Column& col = (*cols)[c++];
          col.Reserve(col.size() + count);
          for (int64_t g = begin; g < end; ++g) {
            const AccVal& st = vals[g * num_val_aggs_ + val_index_[a]];
            if (st.has) {
              col.AppendValue(st.v);
            } else {
              col.AppendNull();  // MIN/MAX over no non-NULL values
            }
          }
          break;
        }
        case AggFunc::kAvg: {
          Column& sum = (*cols)[c++];
          Column& cnt = (*cols)[c++];
          sum.Reserve(sum.size() + count);
          cnt.Reserve(cnt.size() + count);
          for (int64_t g = begin; g < end; ++g) {
            const AccNum& st = states[g * num_aggs + a];
            sum.AppendDouble(st.d);
            cnt.AppendInt(st.i);
          }
          break;
        }
      }
    }
  }

  void MaybeFlush() override {
    if (NumGroups() >= task_ctx_->config().partial_agg_flush_groups) {
      EmitGroups();  // partial state is disposable
    }
  }

};

class FinalAggOperator : public AggOperatorBase {
 public:
  using AggOperatorBase::AggOperatorBase;

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.final_agg_us;
  }
  std::string Name() const override { return "FinalAggregation"; }

 protected:
  // Input layout: group keys at [0, k), then per-agg state columns.
  void UpdateBatch(const std::vector<const Column*>& cols, int64_t n,
                   const int64_t* ids, AccNum* states, AccVal* vals) override {
    const size_t num_aggs = aggs_.size();
    int ch = static_cast<int>(group_by_.size());
    for (size_t a = 0; a < num_aggs; ++a) {
      const Aggregate& agg = aggs_[a];
      switch (agg.func) {
        case AggFunc::kCount: {
          const int64_t* v = cols[ch++]->ints().data();
          for (int64_t i = 0; i < n; ++i) {
            if (i + kStatePrefetch < n) {
              __builtin_prefetch(&states[ids[i + kStatePrefetch] * num_aggs]);
            }
            states[ids[i] * num_aggs + a].i += v[i];
          }
          break;
        }
        case AggFunc::kSum: {
          // Partial sums are NULL for all-NULL groups — skip them and keep
          // the non-NULL contribution count in the spare AccNum word so an
          // everywhere-NULL group finalizes as NULL.
          const Column& col = *cols[ch++];
          const uint8_t* valid =
              col.may_have_nulls() ? col.validity().data() : nullptr;
          if (agg.ResultType() == DataType::kInt64) {
            const int64_t* v = col.ints().data();
            for (int64_t i = 0; i < n; ++i) {
              if (i + kStatePrefetch < n) {
                __builtin_prefetch(&states[ids[i + kStatePrefetch] * num_aggs]);
              }
              if (valid != nullptr && valid[i] == 0) continue;
              AccNum& st = states[ids[i] * num_aggs + a];
              st.i += v[i];
              st.d += 1.0;
            }
          } else if (col.type() == DataType::kDouble) {
            const double* v = col.doubles().data();
            for (int64_t i = 0; i < n; ++i) {
              if (i + kStatePrefetch < n) {
                __builtin_prefetch(&states[ids[i + kStatePrefetch] * num_aggs]);
              }
              if (valid != nullptr && valid[i] == 0) continue;
              AccNum& st = states[ids[i] * num_aggs + a];
              st.d += v[i];
              st.i += 1;
            }
          } else {
            const int64_t* v = col.ints().data();
            for (int64_t i = 0; i < n; ++i) {
              if (i + kStatePrefetch < n) {
                __builtin_prefetch(&states[ids[i + kStatePrefetch] * num_aggs]);
              }
              if (valid != nullptr && valid[i] == 0) continue;
              AccNum& st = states[ids[i] * num_aggs + a];
              st.d += static_cast<double>(v[i]);
              st.i += 1;
            }
          }
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax:
          UpdateMinMax(*cols[ch++], n, ids, val_index_[a],
                       agg.func == AggFunc::kMax, vals);
          break;
        case AggFunc::kAvg: {
          const double* sum = cols[ch]->doubles().data();
          const int64_t* cnt = cols[ch + 1]->ints().data();
          for (int64_t i = 0; i < n; ++i) {
            if (i + kStatePrefetch < n) {
              __builtin_prefetch(&states[ids[i + kStatePrefetch] * num_aggs]);
            }
            AccNum& st = states[ids[i] * num_aggs + a];
            st.d += sum[i];
            st.i += cnt[i];
          }
          ch += 2;
          break;
        }
      }
    }
  }

  std::vector<DataType> OutputTypes() const override {
    // Keys keep their (partial-layout) types; aggregates finalize.
    std::vector<DataType> types;
    for (size_t k = 0; k < group_by_.size(); ++k) {
      types.push_back(input_types_[k]);
    }
    for (const auto& agg : aggs_) types.push_back(agg.ResultType());
    return types;
  }

  void EmitStates(const AccNum* states, const AccVal* vals, int64_t begin,
                  int64_t end, std::vector<Column>* cols) override {
    const size_t num_aggs = aggs_.size();
    const int64_t count = end - begin;
    size_t c = group_by_.size();
    for (size_t a = 0; a < num_aggs; ++a) {
      const Aggregate& agg = aggs_[a];
      Column& col = (*cols)[c++];
      col.Reserve(col.size() + count);
      switch (agg.func) {
        case AggFunc::kCount:
          for (int64_t g = begin; g < end; ++g) {
            col.AppendInt(states[g * num_aggs + a].i);
          }
          break;
        case AggFunc::kSum:
          // SQL: SUM over zero non-NULL values (empty group, or all inputs
          // NULL) is NULL, not 0.
          if (agg.ResultType() == DataType::kInt64) {
            for (int64_t g = begin; g < end; ++g) {
              const AccNum& st = states[g * num_aggs + a];
              if (st.d == 0) {
                col.AppendNull();
              } else {
                col.AppendInt(st.i);
              }
            }
          } else {
            for (int64_t g = begin; g < end; ++g) {
              const AccNum& st = states[g * num_aggs + a];
              if (st.i == 0) {
                col.AppendNull();
              } else {
                col.AppendDouble(st.d);
              }
            }
          }
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          for (int64_t g = begin; g < end; ++g) {
            const AccVal& st = vals[g * num_val_aggs_ + val_index_[a]];
            if (st.has) {
              col.AppendValue(st.v);
            } else {
              col.AppendNull();
            }
          }
          break;
        case AggFunc::kAvg:
          for (int64_t g = begin; g < end; ++g) {
            const AccNum& st = states[g * num_aggs + a];
            if (st.i == 0) {
              col.AppendNull();  // AVG over no non-NULL values
            } else {
              col.AppendDouble(st.d / static_cast<double>(st.i));
            }
          }
          break;
      }
    }
  }

  bool EmitEmptyGroup() const override { return true; }
};

class AggFactory : public OperatorFactory {
 public:
  AggFactory(bool partial, std::vector<int> group_by,
             std::vector<Aggregate> aggs, std::vector<DataType> input_types)
      : partial_(partial),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)),
        input_types_(std::move(input_types)) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    if (partial_) {
      return std::make_unique<PartialAggOperator>(ctx, group_by_, aggs_,
                                                  input_types_);
    }
    // The final phase consumes the partial layout, where the group keys
    // occupy channels [0, k) regardless of their original positions.
    std::vector<int> positional_keys(group_by_.size());
    for (size_t k = 0; k < group_by_.size(); ++k) {
      positional_keys[k] = static_cast<int>(k);
    }
    return std::make_unique<FinalAggOperator>(ctx, std::move(positional_keys),
                                              aggs_, input_types_);
  }
  std::string Name() const override {
    return partial_ ? "PartialAggregation" : "FinalAggregation";
  }

 private:
  bool partial_;
  std::vector<int> group_by_;
  std::vector<Aggregate> aggs_;
  std::vector<DataType> input_types_;
};

// ---------------------------------------------------------------------------
// TopN / Limit
// ---------------------------------------------------------------------------

class TopNOperator : public Operator {
 public:
  TopNOperator(TaskContext* ctx, std::vector<SortKey> keys, int64_t limit,
               std::vector<DataType> input_types)
      : Operator(ctx),
        keys_(std::move(keys)),
        limit_(limit),
        input_types_(std::move(input_types)) {}

  void AddInput(const PagePtr& page) override {
    for (int64_t r = 0; r < page->num_rows(); ++r) {
      std::vector<Value> row;
      row.reserve(page->num_columns());
      for (int c = 0; c < page->num_columns(); ++c) {
        row.push_back(page->column(c).ValueAt(r));
      }
      rows_.push_back(std::move(row));
    }
    if (static_cast<int64_t>(rows_.size()) > 4 * limit_) Trim();
  }

  PagePtr GetOutput() override {
    if (state_ == OperatorState::kFinishing) {
      if (!emitted_) {
        emitted_ = true;
        Trim();
        if (!rows_.empty()) {
          std::vector<Column> cols;
          for (DataType t : input_types_) cols.emplace_back(t);
          for (const auto& row : rows_) {
            for (size_t c = 0; c < row.size(); ++c) cols[c].AppendValue(row[c]);
          }
          pending_ = Page::Make(std::move(cols));
        }
      }
      if (pending_ != nullptr) {
        PagePtr out = pending_;
        pending_ = nullptr;
        return out;
      }
      return EmitEnd();
    }
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.topn_us;
  }
  std::string Name() const override { return "TopN"; }

 private:
  void Trim() {
    auto less = [this](const std::vector<Value>& a,
                       const std::vector<Value>& b) {
      for (const auto& key : keys_) {
        int c = CompareValues(a[key.channel], b[key.channel]);
        if (c != 0) return key.ascending ? c < 0 : c > 0;
      }
      return false;
    };
    std::stable_sort(rows_.begin(), rows_.end(), less);
    if (static_cast<int64_t>(rows_.size()) > limit_) rows_.resize(limit_);
  }

  std::vector<SortKey> keys_;
  int64_t limit_;
  std::vector<DataType> input_types_;
  std::vector<std::vector<Value>> rows_;
  PagePtr pending_;
  bool emitted_ = false;
};

class TopNFactory : public OperatorFactory {
 public:
  TopNFactory(std::vector<SortKey> keys, int64_t limit,
              std::vector<DataType> input_types)
      : keys_(std::move(keys)),
        limit_(limit),
        input_types_(std::move(input_types)) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<TopNOperator>(ctx, keys_, limit_, input_types_);
  }
  std::string Name() const override { return "TopN"; }

 private:
  std::vector<SortKey> keys_;
  int64_t limit_;
  std::vector<DataType> input_types_;
};

class LimitOperator : public Operator {
 public:
  LimitOperator(TaskContext* ctx, int64_t limit)
      : Operator(ctx), remaining_(limit) {}

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && pending_ == nullptr;
  }

  void AddInput(const PagePtr& page) override {
    if (remaining_ <= 0) return;
    if (page->num_rows() <= remaining_) {
      pending_ = page;
      remaining_ -= page->num_rows();
    } else {
      std::vector<int32_t> head(static_cast<size_t>(remaining_));
      for (int64_t i = 0; i < remaining_; ++i) head[i] = static_cast<int32_t>(i);
      pending_ = page->Select(head);
      remaining_ = 0;
    }
  }

  PagePtr GetOutput() override {
    if (pending_ != nullptr) {
      PagePtr out = pending_;
      pending_ = nullptr;
      return out;
    }
    if (state_ == OperatorState::kFinishing || remaining_ <= 0) {
      return EmitEnd();
    }
    return nullptr;
  }

  double CostPerRowMicros() const override { return 1; }
  std::string Name() const override { return "Limit"; }

 private:
  int64_t remaining_;
  PagePtr pending_;
};

class LimitFactory : public OperatorFactory {
 public:
  explicit LimitFactory(int64_t limit) : limit_(limit) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<LimitOperator>(ctx, limit_);
  }
  std::string Name() const override { return "Limit"; }

 private:
  int64_t limit_;
};

// ---------------------------------------------------------------------------
// Sinks: LocalExchangeSink / HashBuild / TaskOutput
// ---------------------------------------------------------------------------

class LocalExchangeSinkOperator : public Operator {
 public:
  LocalExchangeSinkOperator(TaskContext* ctx, LocalExchange* exchange)
      : Operator(ctx), exchange_(exchange) {
    exchange_->AddSinkDriver();
  }

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && exchange_->AcceptingInput();
  }

  void AddInput(const PagePtr& page) override { exchange_->Enqueue(page); }

  PagePtr GetOutput() override {
    if (state_ == OperatorState::kFinishing) {
      exchange_->SinkDriverFinished();
      return EmitEnd();
    }
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.local_exchange_us;
  }
  std::string Name() const override { return "LocalExchangeSink"; }

 private:
  LocalExchange* exchange_;
};

class LocalExchangeSinkFactory : public OperatorFactory {
 public:
  explicit LocalExchangeSinkFactory(LocalExchange* exchange)
      : exchange_(exchange) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<LocalExchangeSinkOperator>(ctx, exchange_);
  }
  std::string Name() const override { return "LocalExchangeSink"; }

 private:
  LocalExchange* exchange_;
};

class HashBuildOperator : public Operator {
 public:
  HashBuildOperator(TaskContext* ctx, JoinBridge* bridge)
      : Operator(ctx), bridge_(bridge) {
    bridge_->AddBuildDriver();
  }

  void AddInput(const PagePtr& page) override {
    Status s = bridge_->AddBuildPage(page);
    if (!s.ok()) task_ctx_->ReportFailure(s);
  }

  PagePtr GetOutput() override {
    if (state_ == OperatorState::kFinishing) {
      bool finalized = bridge_->BuildDriverFinished();
      if (finalized) {
        task_ctx_->SetHashBuildMicros(bridge_->build_index_micros());
      }
      return EmitEnd();
    }
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.hash_build_us;
  }
  std::string Name() const override { return "HashBuilder"; }

 private:
  JoinBridge* bridge_;
};

class HashBuildFactory : public OperatorFactory {
 public:
  explicit HashBuildFactory(JoinBridge* bridge) : bridge_(bridge) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<HashBuildOperator>(ctx, bridge_);
  }
  std::string Name() const override { return "HashBuilder"; }

 private:
  JoinBridge* bridge_;
};

class TaskOutputOperator : public Operator {
 public:
  TaskOutputOperator(TaskContext* ctx, OutputBuffer* buffer)
      : Operator(ctx), buffer_(buffer) {
    buffer_->AddProducerDriver();
  }

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && buffer_->AcceptingInput();
  }

  void AddInput(const PagePtr& page) override {
    task_ctx_->AddOutputRows(page->num_rows());
    task_ctx_->AddOutputBytes(page->ByteSize());
    buffer_->Enqueue(page);
  }

  PagePtr GetOutput() override {
    if (state_ == OperatorState::kFinishing) {
      buffer_->ProducerDriverFinished();
      return EmitEnd();
    }
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.task_output_us;
  }
  std::string Name() const override { return "TaskOutput"; }

 private:
  OutputBuffer* buffer_;
};

class TaskOutputFactory : public OperatorFactory {
 public:
  explicit TaskOutputFactory(OutputBuffer* buffer) : buffer_(buffer) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<TaskOutputOperator>(ctx, buffer_);
  }
  std::string Name() const override { return "TaskOutput"; }

 private:
  OutputBuffer* buffer_;
};

}  // namespace

OperatorFactoryPtr MakeTableScanFactory(NextSplitFn next_split,
                                        OpenSplitFn open_split) {
  return std::make_shared<TableScanFactory>(std::move(next_split),
                                            std::move(open_split));
}

OperatorFactoryPtr MakeValuesFactory(std::vector<PagePtr> pages) {
  return std::make_shared<ValuesFactory>(std::move(pages));
}

OperatorFactoryPtr MakeExchangeFactory(ExchangeClient* client) {
  return std::make_shared<ExchangeFactory>(client);
}

OperatorFactoryPtr MakeLocalExchangeSourceFactory(LocalExchange* exchange) {
  return std::make_shared<LocalExchangeSourceFactory>(exchange);
}

OperatorFactoryPtr MakeFilterFactory(ExprPtr predicate) {
  return std::make_shared<FilterFactory>(std::move(predicate));
}

OperatorFactoryPtr MakeProjectFactory(std::vector<ExprPtr> exprs) {
  return std::make_shared<ProjectFactory>(std::move(exprs));
}

OperatorFactoryPtr MakeLookupJoinFactory(JoinBridge* bridge,
                                         std::vector<int> probe_keys,
                                         std::vector<int> build_output_channels,
                                         JoinType join_type) {
  return std::make_shared<LookupJoinFactory>(bridge, std::move(probe_keys),
                                             std::move(build_output_channels),
                                             join_type);
}

OperatorFactoryPtr MakePartialAggFactory(std::vector<int> group_by,
                                         std::vector<Aggregate> aggs,
                                         std::vector<DataType> input_types) {
  return std::make_shared<AggFactory>(true, std::move(group_by),
                                      std::move(aggs), std::move(input_types));
}

OperatorFactoryPtr MakeFinalAggFactory(std::vector<int> group_by,
                                       std::vector<Aggregate> aggs,
                                       std::vector<DataType> input_types) {
  return std::make_shared<AggFactory>(false, std::move(group_by),
                                      std::move(aggs), std::move(input_types));
}

OperatorFactoryPtr MakeTopNFactory(std::vector<SortKey> keys, int64_t limit,
                                   std::vector<DataType> input_types) {
  return std::make_shared<TopNFactory>(std::move(keys), limit,
                                       std::move(input_types));
}

OperatorFactoryPtr MakeLimitFactory(int64_t limit) {
  return std::make_shared<LimitFactory>(limit);
}

OperatorFactoryPtr MakeLocalExchangeSinkFactory(LocalExchange* exchange) {
  return std::make_shared<LocalExchangeSinkFactory>(exchange);
}

OperatorFactoryPtr MakeHashBuildFactory(JoinBridge* bridge) {
  return std::make_shared<HashBuildFactory>(bridge);
}

OperatorFactoryPtr MakeTaskOutputFactory(OutputBuffer* buffer) {
  return std::make_shared<TaskOutputFactory>(buffer);
}

}  // namespace accordion
