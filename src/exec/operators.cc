#include "exec/operators.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/logging.h"

namespace accordion {
namespace {

// ---------------------------------------------------------------------------
// TableScan
// ---------------------------------------------------------------------------

class TableScanOperator : public Operator {
 public:
  TableScanOperator(TaskContext* ctx, NextSplitFn next_split,
                    OpenSplitFn open_split)
      : Operator(ctx),
        next_split_(std::move(next_split)),
        open_split_(std::move(open_split)) {}

  void AddInput(const PagePtr&) override {
    ACC_CHECK(false) << "table scan takes no input";
  }

  PagePtr GetOutput() override {
    if (IsFinished()) return nullptr;
    if (end_signalled_ && source_ == nullptr) return EmitEnd();
    while (true) {
      if (source_ == nullptr) {
        if (end_signalled_) return EmitEnd();
        std::optional<SystemSplit> split = next_split_();
        if (!split.has_value()) return EmitEnd();
        source_ = open_split_(*split);
        if (source_ != nullptr && source_->TotalRows() >= 0) {
          task_ctx_->AddScanTotalRows(source_->TotalRows());
        }
        continue;
      }
      PagePtr page = source_->Next();
      if (page == nullptr) {
        source_.reset();  // split exhausted; try the next one
        continue;
      }
      task_ctx_->AddScanRows(page->num_rows());
      return page;
    }
  }

  void SignalEnd() override { end_signalled_ = true; }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.scan_us;
  }
  std::string Name() const override { return "TableScan"; }

 private:
  NextSplitFn next_split_;
  OpenSplitFn open_split_;
  std::unique_ptr<PageSource> source_;
  bool end_signalled_ = false;
};

class TableScanFactory : public OperatorFactory {
 public:
  TableScanFactory(NextSplitFn next_split, OpenSplitFn open_split)
      : next_split_(std::move(next_split)), open_split_(std::move(open_split)) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<TableScanOperator>(ctx, next_split_, open_split_);
  }
  std::string Name() const override { return "TableScan"; }
  bool IsSource() const override { return true; }

 private:
  NextSplitFn next_split_;
  OpenSplitFn open_split_;
};

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

class ValuesOperator : public Operator {
 public:
  ValuesOperator(TaskContext* ctx, std::vector<PagePtr> pages)
      : Operator(ctx), pages_(std::move(pages)) {}

  void AddInput(const PagePtr&) override {
    ACC_CHECK(false) << "values takes no input";
  }

  PagePtr GetOutput() override {
    if (IsFinished()) return nullptr;
    if (end_signalled_ || cursor_ >= pages_.size()) return EmitEnd();
    return pages_[cursor_++];
  }

  void SignalEnd() override { end_signalled_ = true; }
  double CostPerRowMicros() const override { return 0; }
  std::string Name() const override { return "Values"; }

 private:
  std::vector<PagePtr> pages_;
  size_t cursor_ = 0;
  bool end_signalled_ = false;
};

class ValuesFactory : public OperatorFactory {
 public:
  explicit ValuesFactory(std::vector<PagePtr> pages)
      : pages_(std::move(pages)) {}

  OperatorPtr Create(TaskContext* ctx, int driver_seq) override {
    // All pages go to driver 0; extra drivers see an empty source.
    return std::make_unique<ValuesOperator>(
        ctx, driver_seq == 0 ? pages_ : std::vector<PagePtr>{});
  }
  std::string Name() const override { return "Values"; }
  bool IsSource() const override { return true; }

 private:
  std::vector<PagePtr> pages_;
};

// ---------------------------------------------------------------------------
// Exchange / LocalExchange source
// ---------------------------------------------------------------------------

class ExchangeOperator : public Operator {
 public:
  ExchangeOperator(TaskContext* ctx, ExchangeClient* client)
      : Operator(ctx), client_(client) {}

  void AddInput(const PagePtr&) override {
    ACC_CHECK(false) << "exchange takes no input";
  }

  PagePtr GetOutput() override {
    if (IsFinished()) return nullptr;
    if (end_signalled_) return EmitEnd();
    PagePtr page = client_->Poll();
    if (page == nullptr) return nullptr;
    if (page->IsEnd()) return EmitEnd();
    return page;
  }

  void SignalEnd() override { end_signalled_ = true; }
  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.exchange_us;
  }
  std::string Name() const override { return "Exchange"; }

 private:
  ExchangeClient* client_;
  bool end_signalled_ = false;
};

class ExchangeFactory : public OperatorFactory {
 public:
  explicit ExchangeFactory(ExchangeClient* client) : client_(client) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<ExchangeOperator>(ctx, client_);
  }
  std::string Name() const override { return "Exchange"; }
  bool IsSource() const override { return true; }

 private:
  ExchangeClient* client_;
};

class LocalExchangeSourceOperator : public Operator {
 public:
  LocalExchangeSourceOperator(TaskContext* ctx, LocalExchange* exchange)
      : Operator(ctx), exchange_(exchange) {}

  void AddInput(const PagePtr&) override {
    ACC_CHECK(false) << "local exchange source takes no input";
  }

  PagePtr GetOutput() override {
    if (IsFinished()) return nullptr;
    if (end_signalled_) return EmitEnd();
    PagePtr page = exchange_->Poll();
    if (page == nullptr) return nullptr;
    if (page->IsEnd()) return EmitEnd();
    return page;
  }

  void SignalEnd() override { end_signalled_ = true; }
  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.local_exchange_us;
  }
  std::string Name() const override { return "LocalExchangeSource"; }

 private:
  LocalExchange* exchange_;
  bool end_signalled_ = false;
};

class LocalExchangeSourceFactory : public OperatorFactory {
 public:
  explicit LocalExchangeSourceFactory(LocalExchange* exchange)
      : exchange_(exchange) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<LocalExchangeSourceOperator>(ctx, exchange_);
  }
  std::string Name() const override { return "LocalExchangeSource"; }
  bool IsSource() const override { return true; }

 private:
  LocalExchange* exchange_;
};

// ---------------------------------------------------------------------------
// Filter / Project
// ---------------------------------------------------------------------------

class FilterOperator : public Operator {
 public:
  FilterOperator(TaskContext* ctx, ExprPtr predicate)
      : Operator(ctx), predicate_(std::move(predicate)) {}

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && pending_ == nullptr;
  }

  void AddInput(const PagePtr& page) override {
    std::vector<int32_t> selected = FilterRows(*predicate_, *page);
    if (selected.empty()) return;
    if (static_cast<int64_t>(selected.size()) == page->num_rows()) {
      pending_ = page;
    } else {
      pending_ = page->Select(selected);
    }
  }

  PagePtr GetOutput() override {
    if (pending_ != nullptr) {
      PagePtr out = pending_;
      pending_ = nullptr;
      return out;
    }
    if (state_ == OperatorState::kFinishing) return EmitEnd();
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.filter_us;
  }
  std::string Name() const override { return "Filter"; }

 private:
  ExprPtr predicate_;
  PagePtr pending_;
};

class FilterFactory : public OperatorFactory {
 public:
  explicit FilterFactory(ExprPtr predicate) : predicate_(std::move(predicate)) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<FilterOperator>(ctx, predicate_);
  }
  std::string Name() const override { return "Filter"; }

 private:
  ExprPtr predicate_;
};

class ProjectOperator : public Operator {
 public:
  ProjectOperator(TaskContext* ctx, std::vector<ExprPtr> exprs)
      : Operator(ctx), exprs_(std::move(exprs)) {}

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && pending_ == nullptr;
  }

  void AddInput(const PagePtr& page) override {
    std::vector<Column> cols;
    cols.reserve(exprs_.size());
    for (const auto& e : exprs_) cols.push_back(e->Eval(*page));
    pending_ = Page::Make(std::move(cols));
  }

  PagePtr GetOutput() override {
    if (pending_ != nullptr) {
      PagePtr out = pending_;
      pending_ = nullptr;
      return out;
    }
    if (state_ == OperatorState::kFinishing) return EmitEnd();
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.project_us;
  }
  std::string Name() const override { return "Project"; }

 private:
  std::vector<ExprPtr> exprs_;
  PagePtr pending_;
};

class ProjectFactory : public OperatorFactory {
 public:
  explicit ProjectFactory(std::vector<ExprPtr> exprs)
      : exprs_(std::move(exprs)) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<ProjectOperator>(ctx, exprs_);
  }
  std::string Name() const override { return "Project"; }

 private:
  std::vector<ExprPtr> exprs_;
};

// ---------------------------------------------------------------------------
// LookupJoin (probe side of the hash join)
// ---------------------------------------------------------------------------

class LookupJoinOperator : public Operator {
 public:
  LookupJoinOperator(TaskContext* ctx, JoinBridge* bridge,
                     std::vector<int> probe_keys,
                     std::vector<int> build_output_channels)
      : Operator(ctx),
        bridge_(bridge),
        probe_keys_(std::move(probe_keys)),
        build_output_channels_(std::move(build_output_channels)) {}

  bool NeedsInput() const override {
    // Paper §4.1: probing waits for the build side to complete.
    return state_ == OperatorState::kRunning && bridge_->built() &&
           pending_.empty();
  }

  void AddInput(const PagePtr& page) override {
    std::vector<int32_t> probe_rows;
    std::vector<int64_t> build_rows;
    bridge_->Probe(*page, probe_keys_, &probe_rows, &build_rows);
    if (probe_rows.empty()) return;
    // Emit in bounded chunks to keep pages small.
    const int64_t chunk = task_ctx_->config().batch_rows * 4;
    for (size_t off = 0; off < probe_rows.size();
         off += static_cast<size_t>(chunk)) {
      size_t end = std::min(probe_rows.size(), off + static_cast<size_t>(chunk));
      std::vector<int32_t> p(probe_rows.begin() + off, probe_rows.begin() + end);
      std::vector<int64_t> b(build_rows.begin() + off, build_rows.begin() + end);
      PagePtr probe_part = page->Select(p);
      std::vector<Column> cols = probe_part->columns();
      for (int ch : build_output_channels_) {
        cols.push_back(bridge_->GatherBuild(ch, b));
      }
      pending_.push_back(Page::Make(std::move(cols)));
    }
  }

  PagePtr GetOutput() override {
    if (!pending_.empty()) {
      PagePtr out = pending_.front();
      pending_.pop_front();
      return out;
    }
    if (state_ == OperatorState::kFinishing) return EmitEnd();
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.probe_us;
  }
  std::string Name() const override { return "LookupJoin"; }

 private:
  JoinBridge* bridge_;
  std::vector<int> probe_keys_;
  std::vector<int> build_output_channels_;
  std::deque<PagePtr> pending_;
};

class LookupJoinFactory : public OperatorFactory {
 public:
  LookupJoinFactory(JoinBridge* bridge, std::vector<int> probe_keys,
                    std::vector<int> build_output_channels)
      : bridge_(bridge),
        probe_keys_(std::move(probe_keys)),
        build_output_channels_(std::move(build_output_channels)) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<LookupJoinOperator>(ctx, bridge_, probe_keys_,
                                                build_output_channels_);
  }
  std::string Name() const override { return "LookupJoin"; }

 private:
  JoinBridge* bridge_;
  std::vector<int> probe_keys_;
  std::vector<int> build_output_channels_;
};

// ---------------------------------------------------------------------------
// Aggregation (partial + final share the accumulator machinery)
// ---------------------------------------------------------------------------

struct AccState {
  int64_t i = 0;
  double d = 0;
  Value v;
  bool has_v = false;
};

struct Group {
  std::vector<Value> keys;
  std::vector<AccState> states;
};

std::string EncodeKey(const Page& page, const std::vector<int>& channels,
                      int64_t row) {
  std::string key;
  for (int ch : channels) {
    const Column& col = page.column(ch);
    switch (col.type()) {
      case DataType::kString: {
        const std::string& s = col.StrAt(row);
        uint32_t len = static_cast<uint32_t>(s.size());
        key.append(reinterpret_cast<const char*>(&len), 4);
        key.append(s);
        break;
      }
      case DataType::kDouble: {
        double d = col.DoubleAt(row);
        key.append(reinterpret_cast<const char*>(&d), 8);
        break;
      }
      default: {
        int64_t v = col.IntAt(row);
        key.append(reinterpret_cast<const char*>(&v), 8);
        break;
      }
    }
  }
  return key;
}

/// Base for both aggregation phases; subclasses define how a row updates
/// states and how groups are emitted.
class AggOperatorBase : public Operator {
 public:
  AggOperatorBase(TaskContext* ctx, std::vector<int> group_by,
                  std::vector<Aggregate> aggs,
                  std::vector<DataType> input_types)
      : Operator(ctx),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)),
        input_types_(std::move(input_types)) {}

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && pending_.empty();
  }

  void AddInput(const PagePtr& page) override {
    for (int64_t r = 0; r < page->num_rows(); ++r) {
      std::string key = EncodeKey(*page, group_by_, r);
      auto [it, inserted] = groups_.try_emplace(std::move(key));
      if (inserted) {
        for (int ch : group_by_) it->second.keys.push_back(
            page->column(ch).ValueAt(r));
        it->second.states.resize(aggs_.size());
      }
      UpdateRow(*page, r, &it->second);
    }
    MaybeFlush();
  }

  PagePtr GetOutput() override {
    if (!pending_.empty()) {
      PagePtr out = pending_.front();
      pending_.pop_front();
      return out;
    }
    if (state_ == OperatorState::kFinishing) {
      FlushAll();
      if (!pending_.empty()) {
        PagePtr out = pending_.front();
        pending_.pop_front();
        return out;
      }
      return EmitEnd();
    }
    return nullptr;
  }

 protected:
  virtual void UpdateRow(const Page& page, int64_t row, Group* group) = 0;
  virtual std::vector<DataType> OutputTypes() const = 0;
  virtual void EmitGroup(const Group& group, std::vector<Column>* cols) = 0;
  /// Partial aggregation flushes early (destroy-and-rebuild, §4.1);
  /// final aggregation never does.
  virtual void MaybeFlush() {}
  /// Emit a default row when there are no groups and no GROUP BY keys?
  virtual bool EmitEmptyGroup() const { return false; }

  void FlushAll() {
    if (flushed_all_) return;
    flushed_all_ = true;
    if (groups_.empty() && group_by_.empty() && EmitEmptyGroup()) {
      Group empty;
      empty.states.resize(aggs_.size());
      groups_.emplace("", std::move(empty));
    }
    if (groups_.empty()) return;
    EmitGroups();
  }

  void EmitGroups() {
    std::vector<DataType> types = OutputTypes();
    std::vector<Column> cols;
    for (DataType t : types) cols.emplace_back(t);
    int64_t rows = 0;
    const int64_t max_rows = task_ctx_->config().batch_rows * 4;
    for (auto& [key, group] : groups_) {
      for (size_t k = 0; k < group_by_.size(); ++k) {
        cols[k].AppendValue(group.keys[k]);
      }
      // EmitGroup appends state/result columns after the keys.
      std::vector<Column> tail;
      EmitGroup(group, &tail);
      for (size_t c = 0; c < tail.size(); ++c) {
        cols[group_by_.size() + c].AppendValue(tail[c].ValueAt(0));
      }
      if (++rows >= max_rows) {
        pending_.push_back(Page::Make(std::move(cols)));
        cols.clear();
        for (DataType t : types) cols.emplace_back(t);
        rows = 0;
      }
    }
    if (rows > 0) pending_.push_back(Page::Make(std::move(cols)));
    groups_.clear();
  }

  std::vector<int> group_by_;
  std::vector<Aggregate> aggs_;
  std::vector<DataType> input_types_;
  std::unordered_map<std::string, Group> groups_;
  std::deque<PagePtr> pending_;
  bool flushed_all_ = false;
};

class PartialAggOperator : public AggOperatorBase {
 public:
  using AggOperatorBase::AggOperatorBase;

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.partial_agg_us;
  }
  std::string Name() const override { return "PartialAggregation"; }

 protected:
  void UpdateRow(const Page& page, int64_t row, Group* group) override {
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const Aggregate& agg = aggs_[a];
      AccState& st = group->states[a];
      switch (agg.func) {
        case AggFunc::kCount:
          st.i += 1;
          break;
        case AggFunc::kSum:
          if (agg.ResultType() == DataType::kInt64) {
            st.i += page.column(agg.input_channel).IntAt(row);
          } else {
            st.d += page.column(agg.input_channel).NumericAt(row);
          }
          break;
        case AggFunc::kMin:
        case AggFunc::kMax: {
          Value v = page.column(agg.input_channel).ValueAt(row);
          if (!st.has_v) {
            st.v = std::move(v);
            st.has_v = true;
          } else {
            int c = CompareValues(v, st.v);
            if ((agg.func == AggFunc::kMin && c < 0) ||
                (agg.func == AggFunc::kMax && c > 0)) {
              st.v = std::move(v);
            }
          }
          break;
        }
        case AggFunc::kAvg:
          st.d += page.column(agg.input_channel).NumericAt(row);
          st.i += 1;
          break;
      }
    }
  }

  std::vector<DataType> OutputTypes() const override {
    std::vector<DataType> types;
    for (int ch : group_by_) types.push_back(input_types_[ch]);
    for (const auto& agg : aggs_) {
      switch (agg.func) {
        case AggFunc::kCount:
          types.push_back(DataType::kInt64);
          break;
        case AggFunc::kSum:
          types.push_back(agg.ResultType());
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          types.push_back(agg.input_type);
          break;
        case AggFunc::kAvg:
          types.push_back(DataType::kDouble);
          types.push_back(DataType::kInt64);
          break;
      }
    }
    return types;
  }

  void EmitGroup(const Group& group, std::vector<Column>* cols) override {
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const Aggregate& agg = aggs_[a];
      const AccState& st = group.states[a];
      switch (agg.func) {
        case AggFunc::kCount: {
          Column c(DataType::kInt64);
          c.AppendInt(st.i);
          cols->push_back(std::move(c));
          break;
        }
        case AggFunc::kSum: {
          Column c(agg.ResultType());
          if (agg.ResultType() == DataType::kInt64) {
            c.AppendInt(st.i);
          } else {
            c.AppendDouble(st.d);
          }
          cols->push_back(std::move(c));
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax: {
          Column c(agg.input_type);
          c.AppendValue(st.has_v ? st.v : Value{agg.input_type, 0, 0, {}});
          cols->push_back(std::move(c));
          break;
        }
        case AggFunc::kAvg: {
          Column sum(DataType::kDouble);
          sum.AppendDouble(st.d);
          cols->push_back(std::move(sum));
          Column count(DataType::kInt64);
          count.AppendInt(st.i);
          cols->push_back(std::move(count));
          break;
        }
      }
    }
  }

  void MaybeFlush() override {
    if (static_cast<int64_t>(groups_.size()) >=
        task_ctx_->config().partial_agg_flush_groups) {
      EmitGroups();  // partial state is disposable
    }
  }
};

class FinalAggOperator : public AggOperatorBase {
 public:
  using AggOperatorBase::AggOperatorBase;

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.final_agg_us;
  }
  std::string Name() const override { return "FinalAggregation"; }

 protected:
  // Input layout: group keys at [0, k), then per-agg state columns.
  void UpdateRow(const Page& page, int64_t row, Group* group) override {
    int ch = static_cast<int>(group_by_.size());
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const Aggregate& agg = aggs_[a];
      AccState& st = group->states[a];
      switch (agg.func) {
        case AggFunc::kCount:
          st.i += page.column(ch++).IntAt(row);
          break;
        case AggFunc::kSum:
          if (agg.ResultType() == DataType::kInt64) {
            st.i += page.column(ch++).IntAt(row);
          } else {
            st.d += page.column(ch++).NumericAt(row);
          }
          break;
        case AggFunc::kMin:
        case AggFunc::kMax: {
          Value v = page.column(ch++).ValueAt(row);
          if (!st.has_v) {
            st.v = std::move(v);
            st.has_v = true;
          } else {
            int c = CompareValues(v, st.v);
            if ((agg.func == AggFunc::kMin && c < 0) ||
                (agg.func == AggFunc::kMax && c > 0)) {
              st.v = std::move(v);
            }
          }
          break;
        }
        case AggFunc::kAvg:
          st.d += page.column(ch).DoubleAt(row);
          st.i += page.column(ch + 1).IntAt(row);
          ch += 2;
          break;
      }
    }
  }

  std::vector<DataType> OutputTypes() const override {
    // Keys keep their (partial-layout) types; aggregates finalize.
    std::vector<DataType> types;
    for (size_t k = 0; k < group_by_.size(); ++k) {
      types.push_back(input_types_[k]);
    }
    for (const auto& agg : aggs_) types.push_back(agg.ResultType());
    return types;
  }

  void EmitGroup(const Group& group, std::vector<Column>* cols) override {
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const Aggregate& agg = aggs_[a];
      const AccState& st = group.states[a];
      Column c(agg.ResultType());
      switch (agg.func) {
        case AggFunc::kCount:
          c.AppendInt(st.i);
          break;
        case AggFunc::kSum:
          if (agg.ResultType() == DataType::kInt64) {
            c.AppendInt(st.i);
          } else {
            c.AppendDouble(st.d);
          }
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          c.AppendValue(st.has_v ? st.v : Value{agg.input_type, 0, 0, {}});
          break;
        case AggFunc::kAvg:
          c.AppendDouble(st.i == 0 ? 0 : st.d / static_cast<double>(st.i));
          break;
      }
      cols->push_back(std::move(c));
    }
  }

  bool EmitEmptyGroup() const override { return true; }
};

class AggFactory : public OperatorFactory {
 public:
  AggFactory(bool partial, std::vector<int> group_by,
             std::vector<Aggregate> aggs, std::vector<DataType> input_types)
      : partial_(partial),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)),
        input_types_(std::move(input_types)) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    if (partial_) {
      return std::make_unique<PartialAggOperator>(ctx, group_by_, aggs_,
                                                  input_types_);
    }
    // The final phase consumes the partial layout, where the group keys
    // occupy channels [0, k) regardless of their original positions.
    std::vector<int> positional_keys(group_by_.size());
    for (size_t k = 0; k < group_by_.size(); ++k) {
      positional_keys[k] = static_cast<int>(k);
    }
    return std::make_unique<FinalAggOperator>(ctx, std::move(positional_keys),
                                              aggs_, input_types_);
  }
  std::string Name() const override {
    return partial_ ? "PartialAggregation" : "FinalAggregation";
  }

 private:
  bool partial_;
  std::vector<int> group_by_;
  std::vector<Aggregate> aggs_;
  std::vector<DataType> input_types_;
};

// ---------------------------------------------------------------------------
// TopN / Limit
// ---------------------------------------------------------------------------

class TopNOperator : public Operator {
 public:
  TopNOperator(TaskContext* ctx, std::vector<SortKey> keys, int64_t limit,
               std::vector<DataType> input_types)
      : Operator(ctx),
        keys_(std::move(keys)),
        limit_(limit),
        input_types_(std::move(input_types)) {}

  void AddInput(const PagePtr& page) override {
    for (int64_t r = 0; r < page->num_rows(); ++r) {
      std::vector<Value> row;
      row.reserve(page->num_columns());
      for (int c = 0; c < page->num_columns(); ++c) {
        row.push_back(page->column(c).ValueAt(r));
      }
      rows_.push_back(std::move(row));
    }
    if (static_cast<int64_t>(rows_.size()) > 4 * limit_) Trim();
  }

  PagePtr GetOutput() override {
    if (state_ == OperatorState::kFinishing) {
      if (!emitted_) {
        emitted_ = true;
        Trim();
        if (!rows_.empty()) {
          std::vector<Column> cols;
          for (DataType t : input_types_) cols.emplace_back(t);
          for (const auto& row : rows_) {
            for (size_t c = 0; c < row.size(); ++c) cols[c].AppendValue(row[c]);
          }
          pending_ = Page::Make(std::move(cols));
        }
      }
      if (pending_ != nullptr) {
        PagePtr out = pending_;
        pending_ = nullptr;
        return out;
      }
      return EmitEnd();
    }
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.topn_us;
  }
  std::string Name() const override { return "TopN"; }

 private:
  void Trim() {
    auto less = [this](const std::vector<Value>& a,
                       const std::vector<Value>& b) {
      for (const auto& key : keys_) {
        int c = CompareValues(a[key.channel], b[key.channel]);
        if (c != 0) return key.ascending ? c < 0 : c > 0;
      }
      return false;
    };
    std::stable_sort(rows_.begin(), rows_.end(), less);
    if (static_cast<int64_t>(rows_.size()) > limit_) rows_.resize(limit_);
  }

  std::vector<SortKey> keys_;
  int64_t limit_;
  std::vector<DataType> input_types_;
  std::vector<std::vector<Value>> rows_;
  PagePtr pending_;
  bool emitted_ = false;
};

class TopNFactory : public OperatorFactory {
 public:
  TopNFactory(std::vector<SortKey> keys, int64_t limit,
              std::vector<DataType> input_types)
      : keys_(std::move(keys)),
        limit_(limit),
        input_types_(std::move(input_types)) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<TopNOperator>(ctx, keys_, limit_, input_types_);
  }
  std::string Name() const override { return "TopN"; }

 private:
  std::vector<SortKey> keys_;
  int64_t limit_;
  std::vector<DataType> input_types_;
};

class LimitOperator : public Operator {
 public:
  LimitOperator(TaskContext* ctx, int64_t limit)
      : Operator(ctx), remaining_(limit) {}

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && pending_ == nullptr;
  }

  void AddInput(const PagePtr& page) override {
    if (remaining_ <= 0) return;
    if (page->num_rows() <= remaining_) {
      pending_ = page;
      remaining_ -= page->num_rows();
    } else {
      std::vector<int32_t> head(static_cast<size_t>(remaining_));
      for (int64_t i = 0; i < remaining_; ++i) head[i] = static_cast<int32_t>(i);
      pending_ = page->Select(head);
      remaining_ = 0;
    }
  }

  PagePtr GetOutput() override {
    if (pending_ != nullptr) {
      PagePtr out = pending_;
      pending_ = nullptr;
      return out;
    }
    if (state_ == OperatorState::kFinishing || remaining_ <= 0) {
      return EmitEnd();
    }
    return nullptr;
  }

  double CostPerRowMicros() const override { return 1; }
  std::string Name() const override { return "Limit"; }

 private:
  int64_t remaining_;
  PagePtr pending_;
};

class LimitFactory : public OperatorFactory {
 public:
  explicit LimitFactory(int64_t limit) : limit_(limit) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<LimitOperator>(ctx, limit_);
  }
  std::string Name() const override { return "Limit"; }

 private:
  int64_t limit_;
};

// ---------------------------------------------------------------------------
// Sinks: LocalExchangeSink / HashBuild / TaskOutput
// ---------------------------------------------------------------------------

class LocalExchangeSinkOperator : public Operator {
 public:
  LocalExchangeSinkOperator(TaskContext* ctx, LocalExchange* exchange)
      : Operator(ctx), exchange_(exchange) {
    exchange_->AddSinkDriver();
  }

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && exchange_->AcceptingInput();
  }

  void AddInput(const PagePtr& page) override { exchange_->Enqueue(page); }

  PagePtr GetOutput() override {
    if (state_ == OperatorState::kFinishing) {
      exchange_->SinkDriverFinished();
      return EmitEnd();
    }
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.local_exchange_us;
  }
  std::string Name() const override { return "LocalExchangeSink"; }

 private:
  LocalExchange* exchange_;
};

class LocalExchangeSinkFactory : public OperatorFactory {
 public:
  explicit LocalExchangeSinkFactory(LocalExchange* exchange)
      : exchange_(exchange) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<LocalExchangeSinkOperator>(ctx, exchange_);
  }
  std::string Name() const override { return "LocalExchangeSink"; }

 private:
  LocalExchange* exchange_;
};

class HashBuildOperator : public Operator {
 public:
  HashBuildOperator(TaskContext* ctx, JoinBridge* bridge)
      : Operator(ctx), bridge_(bridge) {
    bridge_->AddBuildDriver();
  }

  void AddInput(const PagePtr& page) override { bridge_->AddBuildPage(page); }

  PagePtr GetOutput() override {
    if (state_ == OperatorState::kFinishing) {
      bool finalized = bridge_->BuildDriverFinished();
      if (finalized) {
        task_ctx_->SetHashBuildMicros(bridge_->build_index_micros());
      }
      return EmitEnd();
    }
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.hash_build_us;
  }
  std::string Name() const override { return "HashBuilder"; }

 private:
  JoinBridge* bridge_;
};

class HashBuildFactory : public OperatorFactory {
 public:
  explicit HashBuildFactory(JoinBridge* bridge) : bridge_(bridge) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<HashBuildOperator>(ctx, bridge_);
  }
  std::string Name() const override { return "HashBuilder"; }

 private:
  JoinBridge* bridge_;
};

class TaskOutputOperator : public Operator {
 public:
  TaskOutputOperator(TaskContext* ctx, OutputBuffer* buffer)
      : Operator(ctx), buffer_(buffer) {
    buffer_->AddProducerDriver();
  }

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && buffer_->AcceptingInput();
  }

  void AddInput(const PagePtr& page) override {
    task_ctx_->AddOutputRows(page->num_rows());
    task_ctx_->AddOutputBytes(page->ByteSize());
    buffer_->Enqueue(page);
  }

  PagePtr GetOutput() override {
    if (state_ == OperatorState::kFinishing) {
      buffer_->ProducerDriverFinished();
      return EmitEnd();
    }
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.task_output_us;
  }
  std::string Name() const override { return "TaskOutput"; }

 private:
  OutputBuffer* buffer_;
};

class TaskOutputFactory : public OperatorFactory {
 public:
  explicit TaskOutputFactory(OutputBuffer* buffer) : buffer_(buffer) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<TaskOutputOperator>(ctx, buffer_);
  }
  std::string Name() const override { return "TaskOutput"; }

 private:
  OutputBuffer* buffer_;
};

}  // namespace

OperatorFactoryPtr MakeTableScanFactory(NextSplitFn next_split,
                                        OpenSplitFn open_split) {
  return std::make_shared<TableScanFactory>(std::move(next_split),
                                            std::move(open_split));
}

OperatorFactoryPtr MakeValuesFactory(std::vector<PagePtr> pages) {
  return std::make_shared<ValuesFactory>(std::move(pages));
}

OperatorFactoryPtr MakeExchangeFactory(ExchangeClient* client) {
  return std::make_shared<ExchangeFactory>(client);
}

OperatorFactoryPtr MakeLocalExchangeSourceFactory(LocalExchange* exchange) {
  return std::make_shared<LocalExchangeSourceFactory>(exchange);
}

OperatorFactoryPtr MakeFilterFactory(ExprPtr predicate) {
  return std::make_shared<FilterFactory>(std::move(predicate));
}

OperatorFactoryPtr MakeProjectFactory(std::vector<ExprPtr> exprs) {
  return std::make_shared<ProjectFactory>(std::move(exprs));
}

OperatorFactoryPtr MakeLookupJoinFactory(JoinBridge* bridge,
                                         std::vector<int> probe_keys,
                                         std::vector<int> build_output_channels) {
  return std::make_shared<LookupJoinFactory>(bridge, std::move(probe_keys),
                                             std::move(build_output_channels));
}

OperatorFactoryPtr MakePartialAggFactory(std::vector<int> group_by,
                                         std::vector<Aggregate> aggs,
                                         std::vector<DataType> input_types) {
  return std::make_shared<AggFactory>(true, std::move(group_by),
                                      std::move(aggs), std::move(input_types));
}

OperatorFactoryPtr MakeFinalAggFactory(std::vector<int> group_by,
                                       std::vector<Aggregate> aggs,
                                       std::vector<DataType> input_types) {
  return std::make_shared<AggFactory>(false, std::move(group_by),
                                      std::move(aggs), std::move(input_types));
}

OperatorFactoryPtr MakeTopNFactory(std::vector<SortKey> keys, int64_t limit,
                                   std::vector<DataType> input_types) {
  return std::make_shared<TopNFactory>(std::move(keys), limit,
                                       std::move(input_types));
}

OperatorFactoryPtr MakeLimitFactory(int64_t limit) {
  return std::make_shared<LimitFactory>(limit);
}

OperatorFactoryPtr MakeLocalExchangeSinkFactory(LocalExchange* exchange) {
  return std::make_shared<LocalExchangeSinkFactory>(exchange);
}

OperatorFactoryPtr MakeHashBuildFactory(JoinBridge* bridge) {
  return std::make_shared<HashBuildFactory>(bridge);
}

OperatorFactoryPtr MakeTaskOutputFactory(OutputBuffer* buffer) {
  return std::make_shared<TaskOutputFactory>(buffer);
}

}  // namespace accordion
