#include "exec/operators.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "exec/hash_table.h"

namespace accordion {
namespace {

// ---------------------------------------------------------------------------
// TableScan
// ---------------------------------------------------------------------------

class TableScanOperator : public Operator {
 public:
  TableScanOperator(TaskContext* ctx, NextSplitFn next_split,
                    OpenSplitFn open_split)
      : Operator(ctx),
        next_split_(std::move(next_split)),
        open_split_(std::move(open_split)) {}

  void AddInput(const PagePtr&) override {
    ACC_CHECK(false) << "table scan takes no input";
  }

  PagePtr GetOutput() override {
    if (IsFinished()) return nullptr;
    if (end_signalled_ && source_ == nullptr) return EmitEnd();
    while (true) {
      if (source_ == nullptr) {
        if (end_signalled_) return EmitEnd();
        std::optional<SystemSplit> split = next_split_();
        if (!split.has_value()) return EmitEnd();
        source_ = open_split_(*split);
        if (source_ != nullptr && source_->TotalRows() >= 0) {
          task_ctx_->AddScanTotalRows(source_->TotalRows());
        }
        continue;
      }
      PagePtr page = source_->Next();
      if (page == nullptr) {
        source_.reset();  // split exhausted; try the next one
        continue;
      }
      task_ctx_->AddScanRows(page->num_rows());
      return page;
    }
  }

  void SignalEnd() override { end_signalled_ = true; }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.scan_us;
  }
  std::string Name() const override { return "TableScan"; }

 private:
  NextSplitFn next_split_;
  OpenSplitFn open_split_;
  std::unique_ptr<PageSource> source_;
  bool end_signalled_ = false;
};

class TableScanFactory : public OperatorFactory {
 public:
  TableScanFactory(NextSplitFn next_split, OpenSplitFn open_split)
      : next_split_(std::move(next_split)), open_split_(std::move(open_split)) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<TableScanOperator>(ctx, next_split_, open_split_);
  }
  std::string Name() const override { return "TableScan"; }
  bool IsSource() const override { return true; }

 private:
  NextSplitFn next_split_;
  OpenSplitFn open_split_;
};

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

class ValuesOperator : public Operator {
 public:
  ValuesOperator(TaskContext* ctx, std::vector<PagePtr> pages)
      : Operator(ctx), pages_(std::move(pages)) {}

  void AddInput(const PagePtr&) override {
    ACC_CHECK(false) << "values takes no input";
  }

  PagePtr GetOutput() override {
    if (IsFinished()) return nullptr;
    if (end_signalled_ || cursor_ >= pages_.size()) return EmitEnd();
    return pages_[cursor_++];
  }

  void SignalEnd() override { end_signalled_ = true; }
  double CostPerRowMicros() const override { return 0; }
  std::string Name() const override { return "Values"; }

 private:
  std::vector<PagePtr> pages_;
  size_t cursor_ = 0;
  bool end_signalled_ = false;
};

class ValuesFactory : public OperatorFactory {
 public:
  explicit ValuesFactory(std::vector<PagePtr> pages)
      : pages_(std::move(pages)) {}

  OperatorPtr Create(TaskContext* ctx, int driver_seq) override {
    // All pages go to driver 0; extra drivers see an empty source.
    return std::make_unique<ValuesOperator>(
        ctx, driver_seq == 0 ? pages_ : std::vector<PagePtr>{});
  }
  std::string Name() const override { return "Values"; }
  bool IsSource() const override { return true; }

 private:
  std::vector<PagePtr> pages_;
};

// ---------------------------------------------------------------------------
// Exchange / LocalExchange source
// ---------------------------------------------------------------------------

class ExchangeOperator : public Operator {
 public:
  ExchangeOperator(TaskContext* ctx, ExchangeClient* client)
      : Operator(ctx), client_(client) {}

  void AddInput(const PagePtr&) override {
    ACC_CHECK(false) << "exchange takes no input";
  }

  PagePtr GetOutput() override {
    if (IsFinished()) return nullptr;
    if (end_signalled_) return EmitEnd();
    PagePtr page = client_->Poll();
    if (page == nullptr) return nullptr;
    if (page->IsEnd()) return EmitEnd();
    return page;
  }

  void SignalEnd() override { end_signalled_ = true; }
  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.exchange_us;
  }
  std::string Name() const override { return "Exchange"; }

 private:
  ExchangeClient* client_;
  bool end_signalled_ = false;
};

class ExchangeFactory : public OperatorFactory {
 public:
  explicit ExchangeFactory(ExchangeClient* client) : client_(client) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<ExchangeOperator>(ctx, client_);
  }
  std::string Name() const override { return "Exchange"; }
  bool IsSource() const override { return true; }

 private:
  ExchangeClient* client_;
};

class LocalExchangeSourceOperator : public Operator {
 public:
  LocalExchangeSourceOperator(TaskContext* ctx, LocalExchange* exchange)
      : Operator(ctx), exchange_(exchange) {}

  void AddInput(const PagePtr&) override {
    ACC_CHECK(false) << "local exchange source takes no input";
  }

  PagePtr GetOutput() override {
    if (IsFinished()) return nullptr;
    if (end_signalled_) return EmitEnd();
    PagePtr page = exchange_->Poll();
    if (page == nullptr) return nullptr;
    if (page->IsEnd()) return EmitEnd();
    return page;
  }

  void SignalEnd() override { end_signalled_ = true; }
  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.local_exchange_us;
  }
  std::string Name() const override { return "LocalExchangeSource"; }

 private:
  LocalExchange* exchange_;
  bool end_signalled_ = false;
};

class LocalExchangeSourceFactory : public OperatorFactory {
 public:
  explicit LocalExchangeSourceFactory(LocalExchange* exchange)
      : exchange_(exchange) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<LocalExchangeSourceOperator>(ctx, exchange_);
  }
  std::string Name() const override { return "LocalExchangeSource"; }
  bool IsSource() const override { return true; }

 private:
  LocalExchange* exchange_;
};

// ---------------------------------------------------------------------------
// Filter / Project
// ---------------------------------------------------------------------------

class FilterOperator : public Operator {
 public:
  FilterOperator(TaskContext* ctx, ExprPtr predicate)
      : Operator(ctx), predicate_(std::move(predicate)) {}

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && pending_ == nullptr;
  }

  void AddInput(const PagePtr& page) override {
    std::vector<int32_t> selected = FilterRows(*predicate_, *page);
    if (selected.empty()) return;
    if (static_cast<int64_t>(selected.size()) == page->num_rows()) {
      pending_ = page;
    } else {
      pending_ = page->Select(selected);
    }
  }

  PagePtr GetOutput() override {
    if (pending_ != nullptr) {
      PagePtr out = pending_;
      pending_ = nullptr;
      return out;
    }
    if (state_ == OperatorState::kFinishing) return EmitEnd();
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.filter_us;
  }
  std::string Name() const override { return "Filter"; }

 private:
  ExprPtr predicate_;
  PagePtr pending_;
};

class FilterFactory : public OperatorFactory {
 public:
  explicit FilterFactory(ExprPtr predicate) : predicate_(std::move(predicate)) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<FilterOperator>(ctx, predicate_);
  }
  std::string Name() const override { return "Filter"; }

 private:
  ExprPtr predicate_;
};

class ProjectOperator : public Operator {
 public:
  ProjectOperator(TaskContext* ctx, std::vector<ExprPtr> exprs)
      : Operator(ctx), exprs_(std::move(exprs)) {}

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && pending_ == nullptr;
  }

  void AddInput(const PagePtr& page) override {
    std::vector<ColumnPtr> cols;
    cols.reserve(exprs_.size());
    // EvalShared lets plain column references pass through the page's
    // buffers untouched; computed expressions materialize once.
    for (const auto& e : exprs_) cols.push_back(e->EvalShared(*page));
    pending_ = Page::MakeShared(std::move(cols));
  }

  PagePtr GetOutput() override {
    if (pending_ != nullptr) {
      PagePtr out = pending_;
      pending_ = nullptr;
      return out;
    }
    if (state_ == OperatorState::kFinishing) return EmitEnd();
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.project_us;
  }
  std::string Name() const override { return "Project"; }

 private:
  std::vector<ExprPtr> exprs_;
  PagePtr pending_;
};

class ProjectFactory : public OperatorFactory {
 public:
  explicit ProjectFactory(std::vector<ExprPtr> exprs)
      : exprs_(std::move(exprs)) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<ProjectOperator>(ctx, exprs_);
  }
  std::string Name() const override { return "Project"; }

 private:
  std::vector<ExprPtr> exprs_;
};

// ---------------------------------------------------------------------------
// LookupJoin (probe side of the hash join)
// ---------------------------------------------------------------------------

class LookupJoinOperator : public Operator {
 public:
  LookupJoinOperator(TaskContext* ctx, JoinBridge* bridge,
                     std::vector<int> probe_keys,
                     std::vector<int> build_output_channels)
      : Operator(ctx),
        bridge_(bridge),
        probe_keys_(std::move(probe_keys)),
        build_output_channels_(std::move(build_output_channels)) {}

  bool NeedsInput() const override {
    // Paper §4.1: probing waits for the build side to complete.
    return state_ == OperatorState::kRunning && bridge_->built() &&
           pending_.empty();
  }

  void AddInput(const PagePtr& page) override {
    probe_rows_.clear();
    build_rows_.clear();
    bridge_->Probe(*page, probe_keys_, &probe_rows_, &build_rows_);
    if (probe_rows_.empty()) return;
    // Emit in bounded chunks to keep pages small. Output columns are
    // gathered directly from the match spans — no intermediate Select page
    // or column copies.
    const int64_t total = static_cast<int64_t>(probe_rows_.size());
    const int64_t chunk = task_ctx_->config().batch_rows * 4;
    for (int64_t off = 0; off < total; off += chunk) {
      int64_t count = std::min(chunk, total - off);
      std::vector<Column> cols;
      cols.reserve(page->num_columns() + build_output_channels_.size());
      for (int c = 0; c < page->num_columns(); ++c) {
        cols.push_back(page->column(c).Gather(probe_rows_.data() + off, count));
      }
      for (int ch : build_output_channels_) {
        cols.push_back(bridge_->GatherBuild(ch, build_rows_.data() + off, count));
      }
      pending_.push_back(Page::Make(std::move(cols)));
    }
  }

  PagePtr GetOutput() override {
    if (!pending_.empty()) {
      PagePtr out = pending_.front();
      pending_.pop_front();
      return out;
    }
    if (state_ == OperatorState::kFinishing) return EmitEnd();
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.probe_us;
  }
  std::string Name() const override { return "LookupJoin"; }

 private:
  JoinBridge* bridge_;
  std::vector<int> probe_keys_;
  std::vector<int> build_output_channels_;
  std::deque<PagePtr> pending_;
  // Reused match buffers — cleared per input page, capacity retained.
  std::vector<int32_t> probe_rows_;
  std::vector<int64_t> build_rows_;
};

class LookupJoinFactory : public OperatorFactory {
 public:
  LookupJoinFactory(JoinBridge* bridge, std::vector<int> probe_keys,
                    std::vector<int> build_output_channels)
      : bridge_(bridge),
        probe_keys_(std::move(probe_keys)),
        build_output_channels_(std::move(build_output_channels)) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<LookupJoinOperator>(ctx, bridge_, probe_keys_,
                                                build_output_channels_);
  }
  std::string Name() const override { return "LookupJoin"; }

 private:
  JoinBridge* bridge_;
  std::vector<int> probe_keys_;
  std::vector<int> build_output_channels_;
};

// ---------------------------------------------------------------------------
// Aggregation (partial + final share the accumulator machinery)
// ---------------------------------------------------------------------------

struct AccState {
  int64_t i = 0;
  double d = 0;
  Value v;
  bool has_v = false;
};

/// Base for both aggregation phases; subclasses define how a batch updates
/// states and how group results are emitted.
///
/// Groups live in a flat open-addressing HashTable that assigns dense,
/// first-seen group ids and stores the key tuples columnar; accumulators
/// live in one contiguous vector indexed `group_id * num_aggs + agg`.
/// Input pages are consumed batch-at-a-time: one HashRows pass, one id
/// resolution pass, then column-wise accumulator updates — no per-row key
/// string or per-group heap allocations.
class AggOperatorBase : public Operator {
 public:
  AggOperatorBase(TaskContext* ctx, std::vector<int> group_by,
                  std::vector<Aggregate> aggs,
                  std::vector<DataType> input_types)
      : Operator(ctx),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)),
        input_types_(std::move(input_types)),
        table_(HashTable::SelectKeyTypes(input_types_, group_by_)) {}

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && pending_.empty();
  }

  void AddInput(const PagePtr& page) override {
    table_.LookupOrInsert(*page, group_by_, &group_ids_);
    states_.resize(static_cast<size_t>(table_.size()) * aggs_.size());
    UpdateBatch(*page, group_ids_);
    MaybeFlush();
  }

  PagePtr GetOutput() override {
    if (!pending_.empty()) {
      PagePtr out = pending_.front();
      pending_.pop_front();
      return out;
    }
    if (state_ == OperatorState::kFinishing) {
      FlushAll();
      if (!pending_.empty()) {
        PagePtr out = pending_.front();
        pending_.pop_front();
        return out;
      }
      return EmitEnd();
    }
    return nullptr;
  }

 protected:
  virtual void UpdateBatch(const Page& page,
                           const std::vector<int64_t>& ids) = 0;
  virtual std::vector<DataType> OutputTypes() const = 0;
  /// Appends the per-agg result columns for groups [begin, end) to
  /// `cols[group_by_.size()...]` (keys are already appended).
  virtual void EmitStates(int64_t begin, int64_t end,
                          std::vector<Column>* cols) = 0;
  /// Partial aggregation flushes early (destroy-and-rebuild, §4.1);
  /// final aggregation never does.
  virtual void MaybeFlush() {}
  /// Emit a default row when there are no groups and no GROUP BY keys?
  virtual bool EmitEmptyGroup() const { return false; }

  /// Min/max accumulation shared by both phases; typed loops for the
  /// numeric cases, string compare without Value round-trips.
  void UpdateMinMax(const Column& col, const std::vector<int64_t>& ids,
                    size_t a, bool is_max) {
    const size_t num_aggs = aggs_.size();
    const int64_t n = col.size();
    switch (col.type()) {
      case DataType::kString:
        for (int64_t i = 0; i < n; ++i) {
          AccState& st = states_[ids[i] * num_aggs + a];
          const std::string& s = col.StrAt(i);
          if (!st.has_v || (is_max ? s > st.v.str : s < st.v.str)) {
            st.v.type = DataType::kString;
            st.v.str = s;
            st.has_v = true;
          }
        }
        break;
      case DataType::kDouble: {
        const double* v = col.doubles().data();
        for (int64_t i = 0; i < n; ++i) {
          AccState& st = states_[ids[i] * num_aggs + a];
          if (!st.has_v || (is_max ? v[i] > st.v.f64 : v[i] < st.v.f64)) {
            st.v.type = DataType::kDouble;
            st.v.f64 = v[i];
            st.has_v = true;
          }
        }
        break;
      }
      default: {
        const int64_t* v = col.ints().data();
        const DataType t = col.type();
        for (int64_t i = 0; i < n; ++i) {
          AccState& st = states_[ids[i] * num_aggs + a];
          if (!st.has_v || (is_max ? v[i] > st.v.i64 : v[i] < st.v.i64)) {
            st.v.type = t;
            st.v.i64 = v[i];
            st.has_v = true;
          }
        }
        break;
      }
    }
  }

  void FlushAll() {
    if (flushed_all_) return;
    flushed_all_ = true;
    if (table_.empty() && group_by_.empty() && EmitEmptyGroup()) {
      // Zero input rows, global aggregation: emit the default row.
      states_.assign(aggs_.size(), AccState{});
      std::vector<DataType> types = OutputTypes();
      std::vector<Column> cols;
      cols.reserve(types.size());
      for (DataType t : types) cols.emplace_back(t);
      EmitStates(0, 1, &cols);
      pending_.push_back(Page::Make(std::move(cols)));
      states_.clear();
      return;
    }
    EmitGroups();
  }

  void EmitGroups() {
    const int64_t total = table_.size();
    if (total == 0) return;
    std::vector<DataType> types = OutputTypes();
    const int64_t max_rows = task_ctx_->config().batch_rows * 4;
    for (int64_t begin = 0; begin < total; begin += max_rows) {
      int64_t end = std::min(total, begin + max_rows);
      std::vector<Column> cols;
      cols.reserve(types.size());
      for (DataType t : types) cols.emplace_back(t);
      table_.AppendKeys(begin, end, &cols);
      EmitStates(begin, end, &cols);
      pending_.push_back(Page::Make(std::move(cols)));
    }
    table_.Clear();
    states_.clear();
  }

  std::vector<int> group_by_;
  std::vector<Aggregate> aggs_;
  std::vector<DataType> input_types_;
  HashTable table_;
  std::vector<AccState> states_;    // group-major: [group_id * num_aggs + a]
  std::vector<int64_t> group_ids_;  // per-input-page scratch
  std::deque<PagePtr> pending_;
  bool flushed_all_ = false;
};

class PartialAggOperator : public AggOperatorBase {
 public:
  using AggOperatorBase::AggOperatorBase;

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.partial_agg_us;
  }
  std::string Name() const override { return "PartialAggregation"; }

 protected:
  void UpdateBatch(const Page& page, const std::vector<int64_t>& ids) override {
    const int64_t n = page.num_rows();
    const size_t num_aggs = aggs_.size();
    AccState* states = states_.data();
    for (size_t a = 0; a < num_aggs; ++a) {
      const Aggregate& agg = aggs_[a];
      switch (agg.func) {
        case AggFunc::kCount:
          for (int64_t i = 0; i < n; ++i) states[ids[i] * num_aggs + a].i += 1;
          break;
        case AggFunc::kSum: {
          const Column& col = page.column(agg.input_channel);
          if (agg.ResultType() == DataType::kInt64) {
            const int64_t* v = col.ints().data();
            for (int64_t i = 0; i < n; ++i) {
              states[ids[i] * num_aggs + a].i += v[i];
            }
          } else if (col.type() == DataType::kDouble) {
            const double* v = col.doubles().data();
            for (int64_t i = 0; i < n; ++i) {
              states[ids[i] * num_aggs + a].d += v[i];
            }
          } else {
            const int64_t* v = col.ints().data();
            for (int64_t i = 0; i < n; ++i) {
              states[ids[i] * num_aggs + a].d += static_cast<double>(v[i]);
            }
          }
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax:
          UpdateMinMax(page.column(agg.input_channel), ids, a,
                       agg.func == AggFunc::kMax);
          break;
        case AggFunc::kAvg: {
          const Column& col = page.column(agg.input_channel);
          if (col.type() == DataType::kDouble) {
            const double* v = col.doubles().data();
            for (int64_t i = 0; i < n; ++i) {
              AccState& st = states[ids[i] * num_aggs + a];
              st.d += v[i];
              st.i += 1;
            }
          } else {
            const int64_t* v = col.ints().data();
            for (int64_t i = 0; i < n; ++i) {
              AccState& st = states[ids[i] * num_aggs + a];
              st.d += static_cast<double>(v[i]);
              st.i += 1;
            }
          }
          break;
        }
      }
    }
  }

  std::vector<DataType> OutputTypes() const override {
    std::vector<DataType> types;
    for (int ch : group_by_) types.push_back(input_types_[ch]);
    for (const auto& agg : aggs_) {
      switch (agg.func) {
        case AggFunc::kCount:
          types.push_back(DataType::kInt64);
          break;
        case AggFunc::kSum:
          types.push_back(agg.ResultType());
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          types.push_back(agg.input_type);
          break;
        case AggFunc::kAvg:
          types.push_back(DataType::kDouble);
          types.push_back(DataType::kInt64);
          break;
      }
    }
    return types;
  }

  void EmitStates(int64_t begin, int64_t end,
                  std::vector<Column>* cols) override {
    const size_t num_aggs = aggs_.size();
    const int64_t count = end - begin;
    size_t c = group_by_.size();
    for (size_t a = 0; a < num_aggs; ++a) {
      const Aggregate& agg = aggs_[a];
      switch (agg.func) {
        case AggFunc::kCount: {
          Column& col = (*cols)[c++];
          col.Reserve(col.size() + count);
          for (int64_t g = begin; g < end; ++g) {
            col.AppendInt(states_[g * num_aggs + a].i);
          }
          break;
        }
        case AggFunc::kSum: {
          Column& col = (*cols)[c++];
          col.Reserve(col.size() + count);
          if (agg.ResultType() == DataType::kInt64) {
            for (int64_t g = begin; g < end; ++g) {
              col.AppendInt(states_[g * num_aggs + a].i);
            }
          } else {
            for (int64_t g = begin; g < end; ++g) {
              col.AppendDouble(states_[g * num_aggs + a].d);
            }
          }
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax: {
          Column& col = (*cols)[c++];
          col.Reserve(col.size() + count);
          for (int64_t g = begin; g < end; ++g) {
            const AccState& st = states_[g * num_aggs + a];
            col.AppendValue(st.has_v ? st.v : Value{agg.input_type, 0, 0, {}});
          }
          break;
        }
        case AggFunc::kAvg: {
          Column& sum = (*cols)[c++];
          Column& cnt = (*cols)[c++];
          sum.Reserve(sum.size() + count);
          cnt.Reserve(cnt.size() + count);
          for (int64_t g = begin; g < end; ++g) {
            const AccState& st = states_[g * num_aggs + a];
            sum.AppendDouble(st.d);
            cnt.AppendInt(st.i);
          }
          break;
        }
      }
    }
  }

  void MaybeFlush() override {
    if (table_.size() >= task_ctx_->config().partial_agg_flush_groups) {
      EmitGroups();  // partial state is disposable
    }
  }
};

class FinalAggOperator : public AggOperatorBase {
 public:
  using AggOperatorBase::AggOperatorBase;

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.final_agg_us;
  }
  std::string Name() const override { return "FinalAggregation"; }

 protected:
  // Input layout: group keys at [0, k), then per-agg state columns.
  void UpdateBatch(const Page& page, const std::vector<int64_t>& ids) override {
    const int64_t n = page.num_rows();
    const size_t num_aggs = aggs_.size();
    AccState* states = states_.data();
    int ch = static_cast<int>(group_by_.size());
    for (size_t a = 0; a < num_aggs; ++a) {
      const Aggregate& agg = aggs_[a];
      switch (agg.func) {
        case AggFunc::kCount: {
          const int64_t* v = page.column(ch++).ints().data();
          for (int64_t i = 0; i < n; ++i) {
            states[ids[i] * num_aggs + a].i += v[i];
          }
          break;
        }
        case AggFunc::kSum: {
          const Column& col = page.column(ch++);
          if (agg.ResultType() == DataType::kInt64) {
            const int64_t* v = col.ints().data();
            for (int64_t i = 0; i < n; ++i) {
              states[ids[i] * num_aggs + a].i += v[i];
            }
          } else if (col.type() == DataType::kDouble) {
            const double* v = col.doubles().data();
            for (int64_t i = 0; i < n; ++i) {
              states[ids[i] * num_aggs + a].d += v[i];
            }
          } else {
            const int64_t* v = col.ints().data();
            for (int64_t i = 0; i < n; ++i) {
              states[ids[i] * num_aggs + a].d += static_cast<double>(v[i]);
            }
          }
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax:
          UpdateMinMax(page.column(ch++), ids, a, agg.func == AggFunc::kMax);
          break;
        case AggFunc::kAvg: {
          const double* sum = page.column(ch).doubles().data();
          const int64_t* cnt = page.column(ch + 1).ints().data();
          for (int64_t i = 0; i < n; ++i) {
            AccState& st = states[ids[i] * num_aggs + a];
            st.d += sum[i];
            st.i += cnt[i];
          }
          ch += 2;
          break;
        }
      }
    }
  }

  std::vector<DataType> OutputTypes() const override {
    // Keys keep their (partial-layout) types; aggregates finalize.
    std::vector<DataType> types;
    for (size_t k = 0; k < group_by_.size(); ++k) {
      types.push_back(input_types_[k]);
    }
    for (const auto& agg : aggs_) types.push_back(agg.ResultType());
    return types;
  }

  void EmitStates(int64_t begin, int64_t end,
                  std::vector<Column>* cols) override {
    const size_t num_aggs = aggs_.size();
    const int64_t count = end - begin;
    size_t c = group_by_.size();
    for (size_t a = 0; a < num_aggs; ++a) {
      const Aggregate& agg = aggs_[a];
      Column& col = (*cols)[c++];
      col.Reserve(col.size() + count);
      switch (agg.func) {
        case AggFunc::kCount:
          for (int64_t g = begin; g < end; ++g) {
            col.AppendInt(states_[g * num_aggs + a].i);
          }
          break;
        case AggFunc::kSum:
          if (agg.ResultType() == DataType::kInt64) {
            for (int64_t g = begin; g < end; ++g) {
              col.AppendInt(states_[g * num_aggs + a].i);
            }
          } else {
            for (int64_t g = begin; g < end; ++g) {
              col.AppendDouble(states_[g * num_aggs + a].d);
            }
          }
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          for (int64_t g = begin; g < end; ++g) {
            const AccState& st = states_[g * num_aggs + a];
            col.AppendValue(st.has_v ? st.v : Value{agg.input_type, 0, 0, {}});
          }
          break;
        case AggFunc::kAvg:
          for (int64_t g = begin; g < end; ++g) {
            const AccState& st = states_[g * num_aggs + a];
            col.AppendDouble(st.i == 0 ? 0
                                       : st.d / static_cast<double>(st.i));
          }
          break;
      }
    }
  }

  bool EmitEmptyGroup() const override { return true; }
};

class AggFactory : public OperatorFactory {
 public:
  AggFactory(bool partial, std::vector<int> group_by,
             std::vector<Aggregate> aggs, std::vector<DataType> input_types)
      : partial_(partial),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)),
        input_types_(std::move(input_types)) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    if (partial_) {
      return std::make_unique<PartialAggOperator>(ctx, group_by_, aggs_,
                                                  input_types_);
    }
    // The final phase consumes the partial layout, where the group keys
    // occupy channels [0, k) regardless of their original positions.
    std::vector<int> positional_keys(group_by_.size());
    for (size_t k = 0; k < group_by_.size(); ++k) {
      positional_keys[k] = static_cast<int>(k);
    }
    return std::make_unique<FinalAggOperator>(ctx, std::move(positional_keys),
                                              aggs_, input_types_);
  }
  std::string Name() const override {
    return partial_ ? "PartialAggregation" : "FinalAggregation";
  }

 private:
  bool partial_;
  std::vector<int> group_by_;
  std::vector<Aggregate> aggs_;
  std::vector<DataType> input_types_;
};

// ---------------------------------------------------------------------------
// TopN / Limit
// ---------------------------------------------------------------------------

class TopNOperator : public Operator {
 public:
  TopNOperator(TaskContext* ctx, std::vector<SortKey> keys, int64_t limit,
               std::vector<DataType> input_types)
      : Operator(ctx),
        keys_(std::move(keys)),
        limit_(limit),
        input_types_(std::move(input_types)) {}

  void AddInput(const PagePtr& page) override {
    for (int64_t r = 0; r < page->num_rows(); ++r) {
      std::vector<Value> row;
      row.reserve(page->num_columns());
      for (int c = 0; c < page->num_columns(); ++c) {
        row.push_back(page->column(c).ValueAt(r));
      }
      rows_.push_back(std::move(row));
    }
    if (static_cast<int64_t>(rows_.size()) > 4 * limit_) Trim();
  }

  PagePtr GetOutput() override {
    if (state_ == OperatorState::kFinishing) {
      if (!emitted_) {
        emitted_ = true;
        Trim();
        if (!rows_.empty()) {
          std::vector<Column> cols;
          for (DataType t : input_types_) cols.emplace_back(t);
          for (const auto& row : rows_) {
            for (size_t c = 0; c < row.size(); ++c) cols[c].AppendValue(row[c]);
          }
          pending_ = Page::Make(std::move(cols));
        }
      }
      if (pending_ != nullptr) {
        PagePtr out = pending_;
        pending_ = nullptr;
        return out;
      }
      return EmitEnd();
    }
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.topn_us;
  }
  std::string Name() const override { return "TopN"; }

 private:
  void Trim() {
    auto less = [this](const std::vector<Value>& a,
                       const std::vector<Value>& b) {
      for (const auto& key : keys_) {
        int c = CompareValues(a[key.channel], b[key.channel]);
        if (c != 0) return key.ascending ? c < 0 : c > 0;
      }
      return false;
    };
    std::stable_sort(rows_.begin(), rows_.end(), less);
    if (static_cast<int64_t>(rows_.size()) > limit_) rows_.resize(limit_);
  }

  std::vector<SortKey> keys_;
  int64_t limit_;
  std::vector<DataType> input_types_;
  std::vector<std::vector<Value>> rows_;
  PagePtr pending_;
  bool emitted_ = false;
};

class TopNFactory : public OperatorFactory {
 public:
  TopNFactory(std::vector<SortKey> keys, int64_t limit,
              std::vector<DataType> input_types)
      : keys_(std::move(keys)),
        limit_(limit),
        input_types_(std::move(input_types)) {}

  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<TopNOperator>(ctx, keys_, limit_, input_types_);
  }
  std::string Name() const override { return "TopN"; }

 private:
  std::vector<SortKey> keys_;
  int64_t limit_;
  std::vector<DataType> input_types_;
};

class LimitOperator : public Operator {
 public:
  LimitOperator(TaskContext* ctx, int64_t limit)
      : Operator(ctx), remaining_(limit) {}

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && pending_ == nullptr;
  }

  void AddInput(const PagePtr& page) override {
    if (remaining_ <= 0) return;
    if (page->num_rows() <= remaining_) {
      pending_ = page;
      remaining_ -= page->num_rows();
    } else {
      std::vector<int32_t> head(static_cast<size_t>(remaining_));
      for (int64_t i = 0; i < remaining_; ++i) head[i] = static_cast<int32_t>(i);
      pending_ = page->Select(head);
      remaining_ = 0;
    }
  }

  PagePtr GetOutput() override {
    if (pending_ != nullptr) {
      PagePtr out = pending_;
      pending_ = nullptr;
      return out;
    }
    if (state_ == OperatorState::kFinishing || remaining_ <= 0) {
      return EmitEnd();
    }
    return nullptr;
  }

  double CostPerRowMicros() const override { return 1; }
  std::string Name() const override { return "Limit"; }

 private:
  int64_t remaining_;
  PagePtr pending_;
};

class LimitFactory : public OperatorFactory {
 public:
  explicit LimitFactory(int64_t limit) : limit_(limit) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<LimitOperator>(ctx, limit_);
  }
  std::string Name() const override { return "Limit"; }

 private:
  int64_t limit_;
};

// ---------------------------------------------------------------------------
// Sinks: LocalExchangeSink / HashBuild / TaskOutput
// ---------------------------------------------------------------------------

class LocalExchangeSinkOperator : public Operator {
 public:
  LocalExchangeSinkOperator(TaskContext* ctx, LocalExchange* exchange)
      : Operator(ctx), exchange_(exchange) {
    exchange_->AddSinkDriver();
  }

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && exchange_->AcceptingInput();
  }

  void AddInput(const PagePtr& page) override { exchange_->Enqueue(page); }

  PagePtr GetOutput() override {
    if (state_ == OperatorState::kFinishing) {
      exchange_->SinkDriverFinished();
      return EmitEnd();
    }
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.local_exchange_us;
  }
  std::string Name() const override { return "LocalExchangeSink"; }

 private:
  LocalExchange* exchange_;
};

class LocalExchangeSinkFactory : public OperatorFactory {
 public:
  explicit LocalExchangeSinkFactory(LocalExchange* exchange)
      : exchange_(exchange) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<LocalExchangeSinkOperator>(ctx, exchange_);
  }
  std::string Name() const override { return "LocalExchangeSink"; }

 private:
  LocalExchange* exchange_;
};

class HashBuildOperator : public Operator {
 public:
  HashBuildOperator(TaskContext* ctx, JoinBridge* bridge)
      : Operator(ctx), bridge_(bridge) {
    bridge_->AddBuildDriver();
  }

  void AddInput(const PagePtr& page) override { bridge_->AddBuildPage(page); }

  PagePtr GetOutput() override {
    if (state_ == OperatorState::kFinishing) {
      bool finalized = bridge_->BuildDriverFinished();
      if (finalized) {
        task_ctx_->SetHashBuildMicros(bridge_->build_index_micros());
      }
      return EmitEnd();
    }
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.hash_build_us;
  }
  std::string Name() const override { return "HashBuilder"; }

 private:
  JoinBridge* bridge_;
};

class HashBuildFactory : public OperatorFactory {
 public:
  explicit HashBuildFactory(JoinBridge* bridge) : bridge_(bridge) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<HashBuildOperator>(ctx, bridge_);
  }
  std::string Name() const override { return "HashBuilder"; }

 private:
  JoinBridge* bridge_;
};

class TaskOutputOperator : public Operator {
 public:
  TaskOutputOperator(TaskContext* ctx, OutputBuffer* buffer)
      : Operator(ctx), buffer_(buffer) {
    buffer_->AddProducerDriver();
  }

  bool NeedsInput() const override {
    return state_ == OperatorState::kRunning && buffer_->AcceptingInput();
  }

  void AddInput(const PagePtr& page) override {
    task_ctx_->AddOutputRows(page->num_rows());
    task_ctx_->AddOutputBytes(page->ByteSize());
    buffer_->Enqueue(page);
  }

  PagePtr GetOutput() override {
    if (state_ == OperatorState::kFinishing) {
      buffer_->ProducerDriverFinished();
      return EmitEnd();
    }
    return nullptr;
  }

  double CostPerRowMicros() const override {
    return task_ctx_->config().cost.task_output_us;
  }
  std::string Name() const override { return "TaskOutput"; }

 private:
  OutputBuffer* buffer_;
};

class TaskOutputFactory : public OperatorFactory {
 public:
  explicit TaskOutputFactory(OutputBuffer* buffer) : buffer_(buffer) {}
  OperatorPtr Create(TaskContext* ctx, int) override {
    return std::make_unique<TaskOutputOperator>(ctx, buffer_);
  }
  std::string Name() const override { return "TaskOutput"; }

 private:
  OutputBuffer* buffer_;
};

}  // namespace

OperatorFactoryPtr MakeTableScanFactory(NextSplitFn next_split,
                                        OpenSplitFn open_split) {
  return std::make_shared<TableScanFactory>(std::move(next_split),
                                            std::move(open_split));
}

OperatorFactoryPtr MakeValuesFactory(std::vector<PagePtr> pages) {
  return std::make_shared<ValuesFactory>(std::move(pages));
}

OperatorFactoryPtr MakeExchangeFactory(ExchangeClient* client) {
  return std::make_shared<ExchangeFactory>(client);
}

OperatorFactoryPtr MakeLocalExchangeSourceFactory(LocalExchange* exchange) {
  return std::make_shared<LocalExchangeSourceFactory>(exchange);
}

OperatorFactoryPtr MakeFilterFactory(ExprPtr predicate) {
  return std::make_shared<FilterFactory>(std::move(predicate));
}

OperatorFactoryPtr MakeProjectFactory(std::vector<ExprPtr> exprs) {
  return std::make_shared<ProjectFactory>(std::move(exprs));
}

OperatorFactoryPtr MakeLookupJoinFactory(JoinBridge* bridge,
                                         std::vector<int> probe_keys,
                                         std::vector<int> build_output_channels) {
  return std::make_shared<LookupJoinFactory>(bridge, std::move(probe_keys),
                                             std::move(build_output_channels));
}

OperatorFactoryPtr MakePartialAggFactory(std::vector<int> group_by,
                                         std::vector<Aggregate> aggs,
                                         std::vector<DataType> input_types) {
  return std::make_shared<AggFactory>(true, std::move(group_by),
                                      std::move(aggs), std::move(input_types));
}

OperatorFactoryPtr MakeFinalAggFactory(std::vector<int> group_by,
                                       std::vector<Aggregate> aggs,
                                       std::vector<DataType> input_types) {
  return std::make_shared<AggFactory>(false, std::move(group_by),
                                      std::move(aggs), std::move(input_types));
}

OperatorFactoryPtr MakeTopNFactory(std::vector<SortKey> keys, int64_t limit,
                                   std::vector<DataType> input_types) {
  return std::make_shared<TopNFactory>(std::move(keys), limit,
                                       std::move(input_types));
}

OperatorFactoryPtr MakeLimitFactory(int64_t limit) {
  return std::make_shared<LimitFactory>(limit);
}

OperatorFactoryPtr MakeLocalExchangeSinkFactory(LocalExchange* exchange) {
  return std::make_shared<LocalExchangeSinkFactory>(exchange);
}

OperatorFactoryPtr MakeHashBuildFactory(JoinBridge* bridge) {
  return std::make_shared<HashBuildFactory>(bridge);
}

OperatorFactoryPtr MakeTaskOutputFactory(OutputBuffer* buffer) {
  return std::make_shared<TaskOutputFactory>(buffer);
}

}  // namespace accordion
