#ifndef ACCORDION_EXEC_OPERATORS_H_
#define ACCORDION_EXEC_OPERATORS_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "exec/exchange_client.h"
#include "exec/join_bridge.h"
#include "exec/local_exchange.h"
#include "exec/operator.h"
#include "exec/output_buffer.h"
#include "exec/split.h"
#include "expr/expr.h"
#include "plan/plan_node.h"
#include "storage/page_source.h"

namespace accordion {

/// Pulls the next system split for a scan driver; nullopt when the stage's
/// split queue is exhausted (Presto-style dynamic split assignment — new
/// tasks/drivers simply keep pulling).
using NextSplitFn = std::function<std::optional<SystemSplit>()>;

/// Opens a split for reading (cluster layer adds storage-node NIC costs).
using OpenSplitFn =
    std::function<std::unique_ptr<PageSource>(const SystemSplit&)>;

// --- source operators ---
OperatorFactoryPtr MakeTableScanFactory(NextSplitFn next_split,
                                        OpenSplitFn open_split);
OperatorFactoryPtr MakeValuesFactory(std::vector<PagePtr> pages);
OperatorFactoryPtr MakeExchangeFactory(ExchangeClient* client);
OperatorFactoryPtr MakeLocalExchangeSourceFactory(LocalExchange* exchange);

// --- compute operators ---
OperatorFactoryPtr MakeFilterFactory(ExprPtr predicate);
OperatorFactoryPtr MakeProjectFactory(std::vector<ExprPtr> exprs);
OperatorFactoryPtr MakeLookupJoinFactory(
    JoinBridge* bridge, std::vector<int> probe_keys,
    std::vector<int> build_output_channels,
    JoinType join_type = JoinType::kInner);
OperatorFactoryPtr MakePartialAggFactory(std::vector<int> group_by,
                                         std::vector<Aggregate> aggs,
                                         std::vector<DataType> input_types);
OperatorFactoryPtr MakeFinalAggFactory(std::vector<int> group_by,
                                       std::vector<Aggregate> aggs,
                                       std::vector<DataType> input_types);
OperatorFactoryPtr MakeTopNFactory(std::vector<SortKey> keys, int64_t limit,
                                   std::vector<DataType> input_types);
OperatorFactoryPtr MakeLimitFactory(int64_t limit);

// --- sink operators ---
OperatorFactoryPtr MakeLocalExchangeSinkFactory(LocalExchange* exchange);
OperatorFactoryPtr MakeHashBuildFactory(JoinBridge* bridge);
OperatorFactoryPtr MakeTaskOutputFactory(OutputBuffer* buffer);

}  // namespace accordion

#endif  // ACCORDION_EXEC_OPERATORS_H_
