#include "exec/task.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/scheduler.h"

namespace accordion {

Task::Task(TaskSpec spec, TaskApis apis, ResourceGovernor* cpu,
           ResourceGovernor* nic, const EngineConfig* config)
    : spec_(std::move(spec)),
      apis_(std::move(apis)),
      task_ctx_(spec_.id.ToString(), cpu, nic, config) {
  // All units of a query share one fair-queueing group, so the scheduler
  // arbitrates between queries, not between a query's own tasks. Must be
  // set before any unit is enqueued (the shuffle buffer enqueues its
  // executors at construction).
  if (!spec_.id.query_id.empty()) {
    task_ctx_.set_scheduler_group(spec_.id.query_id);
  }
  task_ctx_.set_build_budget_bytes(spec_.build_memory_bytes);
  buffer_ = MakeOutputBuffer(spec_.output_config, &task_ctx_);

  PipelineBuildContext ctx;
  ctx.output_buffer = buffer_.get();
  ctx.next_split = apis_.next_split;
  ctx.open_split = apis_.open_split;
  ctx.exchange_client = [this](int source_stage_id) {
    auto it = exchange_clients_.find(source_stage_id);
    if (it == exchange_clients_.end()) {
      int buffer_id = spec_.id.task_seq;
      auto override_it = spec_.source_buffer_ids.find(source_stage_id);
      if (override_it != spec_.source_buffer_ids.end()) {
        buffer_id = override_it->second;
      }
      auto client = std::make_unique<ExchangeClient>(
          &task_ctx_, buffer_id, apis_.fetch_pages, apis_.fetch_pages_deferred);
      it = exchange_clients_.emplace(source_stage_id, std::move(client)).first;
    }
    return it->second.get();
  };
  ctx.local_exchange = [this](int node_id) {
    auto it = local_exchanges_.find(node_id);
    if (it == local_exchanges_.end()) {
      it = local_exchanges_
               .emplace(node_id, std::make_unique<LocalExchange>(
                                     &task_ctx_.config()))
               .first;
    }
    return it->second.get();
  };
  ctx.join_bridge = [this](int node_id, std::vector<DataType> build_types,
                           std::vector<int> build_keys, JoinType join_type,
                           std::vector<DataType> probe_types) {
    auto it = join_bridges_.find(node_id);
    if (it == join_bridges_.end()) {
      it = join_bridges_
               .emplace(node_id, std::make_unique<JoinBridge>(
                                     std::move(build_types),
                                     std::move(build_keys), &task_ctx_,
                                     join_type, std::move(probe_types)))
               .first;
    }
    return it->second.get();
  };

  pipelines_ = BuildPipelines(spec_.fragment, &ctx);
  drivers_.resize(pipelines_.size());
  next_driver_seq_.assign(pipelines_.size(), 0);

  for (const auto& [stage, splits] : spec_.remote_splits) {
    auto it = exchange_clients_.find(stage);
    ACC_CHECK(it != exchange_clients_.end())
        << "remote splits for unknown source stage " << stage;
    for (const auto& split : splits) it->second->AddRemoteSplit(split);
  }
}

Task::~Task() {
  Abort();
  // Collect under the lock, retire outside it: Retire blocks until an
  // in-flight quantum returns, and that quantum may call mutex-taking
  // Task/TaskContext methods — joining under mutex_ here was a deadlock.
  std::vector<Driver*> to_retire;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& pipeline_drivers : drivers_) {
      for (auto& slot : pipeline_drivers) to_retire.push_back(slot.driver.get());
    }
  }
  MorselScheduler* scheduler = task_ctx_.scheduler();
  for (Driver* driver : to_retire) scheduler->Retire(driver);
  // Exchange clients and the output buffer retire their own units in
  // their destructors (after the drivers that reference them are gone).
}

void Task::AddDriverLocked(int pipeline_id) {
  Pipeline& pipeline = pipelines_[pipeline_id];
  int seq = next_driver_seq_[pipeline_id]++;
  std::vector<OperatorPtr> ops;
  ops.reserve(pipeline.factories.size());
  for (auto& factory : pipeline.factories) {
    ops.push_back(factory->Create(&task_ctx_, seq));
  }
  auto driver = std::make_unique<Driver>(pipeline_id, seq, std::move(ops),
                                         &task_ctx_, &cancelled_);
  Driver* raw = driver.get();
  DriverSlot slot;
  slot.driver = std::move(driver);
  drivers_[pipeline_id].push_back(std::move(slot));
  task_ctx_.scheduler()->Enqueue(task_ctx_.scheduler_group(), NonOwning(raw));
}

void Task::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Idempotent: a StartTask RPC whose response was dropped is retried by
  // the coordinator, and the retry must be a no-op.
  if (state_ != TaskState::kCreated) return;
  for (size_t p = 0; p < pipelines_.size(); ++p) {
    int dop = pipelines_[p].tunable ? spec_.initial_dop : 1;
    for (int d = 0; d < dop; ++d) AddDriverLocked(static_cast<int>(p));
  }
  for (auto& [stage, client] : exchange_clients_) client->Start();
  state_ = TaskState::kRunning;
}

void Task::AddRemoteSplits(int source_stage_id,
                           const std::vector<RemoteSplit>& splits) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = exchange_clients_.find(source_stage_id);
  ACC_CHECK(it != exchange_clients_.end())
      << "no exchange client for stage " << source_stage_id;
  for (const auto& split : splits) it->second->AddRemoteSplit(split);
}

int Task::AliveDriversLocked(int pipeline_id) const {
  int alive = 0;
  for (const auto& slot : drivers_[pipeline_id]) {
    if (!slot.driver->done() && !slot.ended_requested) ++alive;
  }
  return alive;
}

Status Task::SetPipelineDop(int pipeline_id, int dop) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pipeline_id < 0 || pipeline_id >= static_cast<int>(pipelines_.size())) {
    return Status::InvalidArgument("no pipeline " +
                                   std::to_string(pipeline_id));
  }
  if (dop < 1) return Status::InvalidArgument("task DOP must be >= 1");
  if (!pipelines_[pipeline_id].tunable) {
    return Status::FailedPrecondition(
        "pipeline contains stateful final operators; DOP pinned to 1");
  }
  if (state_ != TaskState::kRunning) {
    return Status::FailedPrecondition("task is not running");
  }
  int alive = AliveDriversLocked(pipeline_id);
  for (int d = alive; d < dop; ++d) AddDriverLocked(pipeline_id);
  if (dop < alive) {
    int to_end = alive - dop;
    // Retire the most recently added drivers first.
    for (auto it = drivers_[pipeline_id].rbegin();
         it != drivers_[pipeline_id].rend() && to_end > 0; ++it) {
      if (!it->driver->done() && !it->ended_requested) {
        it->driver->RequestEnd();
        it->ended_requested = true;
        --to_end;
      }
    }
  }
  return Status::OK();
}

Status Task::SetDop(int dop) {
  std::vector<int> tunable_ids;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t p = 0; p < pipelines_.size(); ++p) {
      if (pipelines_[p].tunable) tunable_ids.push_back(static_cast<int>(p));
    }
  }
  if (tunable_ids.empty()) {
    return Status::FailedPrecondition("task has no tunable pipelines");
  }
  for (int id : tunable_ids) {
    ACCORDION_RETURN_NOT_OK(SetPipelineDop(id, dop));
  }
  return Status::OK();
}

PagesResult Task::GetPages(int buffer_id, int64_t start_sequence,
                           int max_pages) {
  PagesResult result = buffer_->GetPages(buffer_id, start_sequence, max_pages);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    UpdateStateLocked();
  }
  return result;
}

void Task::EndSignalOutput(int buffer_id) { buffer_->EndSignal(buffer_id); }

void Task::SignalEndSources() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& pipeline_drivers : drivers_) {
    for (auto& slot : pipeline_drivers) {
      if (!slot.driver->done()) {
        slot.driver->RequestEnd();
        slot.ended_requested = true;
      }
    }
  }
}

void Task::Abort() {
  cancelled_ = true;
  TaskState expected = TaskState::kRunning;
  state_.compare_exchange_strong(expected, TaskState::kAborted);
}

void Task::AddOutputTaskGroup(int count, int first_buffer_id) {
  buffer_->AddTaskGroup(count, first_buffer_id);
}

void Task::SwitchOutputToNewestGroup() { buffer_->SwitchToNewestGroup(); }

void Task::UpdateStateLocked() {
  if (state_ != TaskState::kRunning) return;
  if (task_ctx_.failed()) {
    state_ = TaskState::kFailed;
    return;
  }
  for (const auto& pipeline_drivers : drivers_) {
    for (const auto& slot : pipeline_drivers) {
      if (!slot.driver->done()) return;
    }
  }
  if (!buffer_->AllConsumersDone()) return;
  state_ = TaskState::kFinished;
}

bool Task::Finished() {
  std::lock_guard<std::mutex> lock(mutex_);
  UpdateStateLocked();
  return state_ == TaskState::kFinished || state_ == TaskState::kAborted ||
         state_ == TaskState::kFailed;
}

TaskInfo Task::Info() {
  std::lock_guard<std::mutex> lock(mutex_);
  UpdateStateLocked();
  TaskInfo info;
  info.id = spec_.id;
  info.state = state_;
  info.task_dop = 0;
  for (size_t p = 0; p < pipelines_.size(); ++p) {
    int alive = AliveDriversLocked(static_cast<int>(p));
    info.drivers_per_pipeline.push_back(alive);
    if (pipelines_[p].tunable) info.task_dop = std::max(info.task_dop, alive);
  }
  info.output_rows = task_ctx_.output_rows();
  info.output_bytes = task_ctx_.output_bytes();
  info.scan_rows = task_ctx_.scan_rows();
  info.scan_total_rows = task_ctx_.scan_total_rows();
  info.processed_rows = task_ctx_.processed_rows();
  info.turn_up_counter = task_ctx_.turn_up_counter();
  info.hash_build_micros = task_ctx_.hash_build_micros();
  info.buffer_queued_bytes = buffer_->queued_bytes();
  info.peak_build_bytes = task_ctx_.peak_build_bytes();
  info.spill_bytes_written = task_ctx_.spill_bytes_written();
  info.spill_partitions = task_ctx_.spill_partitions();
  info.probe_path = task_ctx_.probe_path();
  info.cpu_utilization = task_ctx_.cpu()->Utilization();
  info.nic_utilization = task_ctx_.nic()->Utilization();
  info.has_join = !join_bridges_.empty();
  info.hash_tables_built = info.has_join;
  for (const auto& [id, bridge] : join_bridges_) {
    if (!bridge->built()) info.hash_tables_built = false;
  }
  info.failed = task_ctx_.failed();
  if (info.failed) info.failure_message = task_ctx_.failure().ToString();
  info.rpc_retries = task_ctx_.rpc_retries();
  return info;
}

}  // namespace accordion
