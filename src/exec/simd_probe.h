#ifndef ACCORDION_EXEC_SIMD_PROBE_H_
#define ACCORDION_EXEC_SIMD_PROBE_H_

#include <cstdint>

namespace accordion {
namespace simd {

/// Runtime CPU dispatch for the AVX2 probe kernels (cached cpuid check).
/// Always false on non-x86 builds.
bool Avx2Supported();

/// out[i] = Mix64(words[i] ^ seed), four lanes at a time. Bit-identical
/// to the scalar Mix64 (the 64-bit multiplies are emulated with 32x32
/// partial products — AVX2 has no 64-bit multiply).
/// Requires Avx2Supported().
void HashWordsAvx2(const int64_t* words, int64_t n, uint64_t seed,
                   uint64_t* out);

/// Word-mode hash-table probe: for each row, gather the slot at
/// hashes[i] & mask from `slots` (16-byte {u64 tag, i64 id} slots, linear
/// probing, power-of-two capacity), compare the tag against words[i], and
/// write the matching dense id (or -1) to ids[i]. Lanes that neither hit
/// nor land on an empty slot fall back to a scalar probe continuation.
/// Requires Avx2Supported().
void FindIdsAvx2(const void* slots, uint64_t mask, const int64_t* words,
                 const uint64_t* hashes, int64_t n, int64_t* ids);

}  // namespace simd
}  // namespace accordion

#endif  // ACCORDION_EXEC_SIMD_PROBE_H_
