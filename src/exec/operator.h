#ifndef ACCORDION_EXEC_OPERATOR_H_
#define ACCORDION_EXEC_OPERATOR_H_

#include <memory>
#include <string>

#include "exec/task_context.h"
#include "vector/page.h"

namespace accordion {

/// Lifecycle states from the paper (§2, Fig. 13): running (unfinished),
/// finishing (no more input; flushing state), finished.
enum class OperatorState { kRunning, kFinishing, kFinished };

/// A physical operator instance owned by exactly one driver. Pages move
/// through the operator chain via AddInput/GetOutput; the **end page**
/// protocol closes the chain: a source operator returns Page::End() when
/// exhausted (or end-signalled), the driver relays it by calling Finish()
/// on the next operator, which flushes (stateful) or passes through
/// (stateless) and eventually emits its own end page.
class Operator {
 public:
  explicit Operator(TaskContext* task_ctx) : task_ctx_(task_ctx) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// True if AddInput may be called now. Sinks use this for backpressure.
  virtual bool NeedsInput() const { return state_ == OperatorState::kRunning; }

  /// Consumes one data page (never an end page).
  virtual void AddInput(const PagePtr& page) = 0;

  /// Produces the next output page; nullptr when nothing is ready yet.
  /// Returns Page::End() exactly once, transitioning to kFinished.
  virtual PagePtr GetOutput() = 0;

  /// Signals that no more input will arrive (end page received upstream).
  virtual void Finish() {
    if (state_ == OperatorState::kRunning) state_ = OperatorState::kFinishing;
  }

  /// Asks a *source* operator to stop early: the paper's end signal used
  /// by intra-task DOP decreases. Default: behave like Finish().
  virtual void SignalEnd() { Finish(); }

  bool IsFinished() const { return state_ == OperatorState::kFinished; }
  OperatorState state() const { return state_; }

  /// Per-row virtual CPU cost this operator charges (microseconds).
  virtual double CostPerRowMicros() const = 0;

  virtual std::string Name() const = 0;

  TaskContext* task_ctx() { return task_ctx_; }

 protected:
  /// Emits the end page exactly once; call from GetOutput when drained.
  PagePtr EmitEnd() {
    state_ = OperatorState::kFinished;
    return Page::End();
  }

  OperatorState state_ = OperatorState::kRunning;
  TaskContext* task_ctx_;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Creates operator instances for one position of a pipeline — one per
/// driver. The factory outlives all its operators; pipelines are lists of
/// factories (paper: "a pipeline is a sequence of operator factories,
/// each capable of producing multiple physical operators").
class OperatorFactory {
 public:
  virtual ~OperatorFactory() = default;

  /// @param driver_seq per-pipeline driver sequence number.
  virtual OperatorPtr Create(TaskContext* task_ctx, int driver_seq) = 0;

  virtual std::string Name() const = 0;

  /// True if instances produce rows without input (pipeline heads).
  virtual bool IsSource() const { return false; }
};

using OperatorFactoryPtr = std::shared_ptr<OperatorFactory>;

}  // namespace accordion

#endif  // ACCORDION_EXEC_OPERATOR_H_
