#include "exec/local_exchange.h"

#include "common/logging.h"

namespace accordion {

void LocalExchange::Enqueue(const PagePtr& page) {
  started_ = true;
  std::lock_guard<std::mutex> lock(mutex_);
  queue_.push_back(page);
  queued_bytes_ += page->ByteSize();
}

void LocalExchange::SinkDriverFinished() {
  started_ = true;
  int remaining = --sink_drivers_;
  ACC_CHECK(remaining >= 0) << "local exchange sink underflow";
}

PagePtr LocalExchange::Poll() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!queue_.empty()) {
    PagePtr page = queue_.front();
    queue_.pop_front();
    if (!page->IsEnd()) queued_bytes_ -= page->ByteSize();
    return page;
  }
  if (CompleteLocked()) return Page::End();
  return nullptr;
}

void LocalExchange::PostEndPage() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Targeted end pages jump the queue so the DOP decrease takes effect
  // promptly; remaining data is handled by surviving drivers.
  queue_.push_front(Page::End());
}

}  // namespace accordion
