#ifndef ACCORDION_EXEC_OUTPUT_BUFFER_H_
#define ACCORDION_EXEC_OUTPUT_BUFFER_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/scheduler.h"
#include "exec/task_context.h"
#include "plan/plan_node.h"
#include "vector/page.h"

namespace accordion {

/// Result of one GetPages poll: zero or more pages plus a completion flag.
/// `complete == true` is the wire form of the end page for that consumer.
struct PagesResult {
  std::vector<PagePtr> pages;
  bool complete = false;

  int64_t TotalBytes() const {
    int64_t bytes = 0;
    for (const auto& p : pages) bytes += p->ByteSize();
    return bytes;
  }
  int64_t TotalRows() const {
    int64_t rows = 0;
    for (const auto& p : pages) rows += p->num_rows();
    return rows;
  }
};

/// Consumer-driven elastic capacity (paper §4.2.2, Fig. 11): starts at one
/// page, doubles whenever the consumer finds the buffer empty (turn-up),
/// and is periodically re-fitted to the observed consumption rate. The
/// turn-up counter feeds bottleneck localization (§5.1). Thread-safe.
class ElasticCapacity {
 public:
  ElasticCapacity(const EngineConfig* config, TaskContext* task_ctx);

  /// Producer-side check: may more bytes be buffered?
  bool Accepting(int64_t queued_bytes) const;

  /// Consumer found the buffer empty while expecting data.
  void OnEmptyPop();

  /// Consumer took `bytes` out; also drives the periodic re-fit.
  void OnConsume(int64_t bytes);

  int64_t capacity_bytes() const { return capacity_.load(); }
  int64_t turn_ups() const { return turn_ups_.load(); }

 private:
  const EngineConfig* config_;
  TaskContext* task_ctx_;  // may be null (no counter reporting)
  std::atomic<int64_t> capacity_;
  std::atomic<int64_t> turn_ups_{0};
  std::mutex window_mutex_;
  int64_t window_start_ms_;
  int64_t window_bytes_ = 0;
};

/// Configuration of one task's output buffer, derived from the fragment's
/// output partitioning by the scheduler.
struct OutputBufferConfig {
  Partitioning partitioning = Partitioning::kGather;
  std::vector<int> keys;
  int initial_consumers = 1;

  /// First buffer id served (usually 0). Tasks spawned after their
  /// consuming stage was DOP-switched start directly at the consumer's
  /// current buffer-id window.
  int first_buffer_id = 0;

  /// Retain all input pages for DOP-switch rebuilds (paper §4.5's
  /// intermediate data cache). Set on stages feeding a join build side.
  bool retain_cache = false;

  /// Deliver incoming pages to every live task group (build side) rather
  /// than only the active one (probe side) during a DOP switch.
  bool multicast_groups = false;
};

/// Producer/consumer bridge between one task and its downstream stage
/// (paper §4.2.1): owns data distribution, shuffling and DOP-variation
/// adaptation, so that parallelism changes touch only buffers.
class OutputBuffer {
 public:
  OutputBuffer(OutputBufferConfig config, TaskContext* task_ctx);
  virtual ~OutputBuffer() = default;

  // --- producer side (task output operators) ---
  virtual bool AcceptingInput() const = 0;
  virtual void Enqueue(const PagePtr& page) = 0;

  /// Tracks the number of task-output drivers feeding this buffer.
  void AddProducerDriver() { ++producer_drivers_; }
  void ProducerDriverFinished();

  // --- consumer side (downstream exchange clients, via RPC) ---

  /// Pulls pages for `buffer_id` with lossless-retry semantics:
  /// `start_sequence` is the number of pages the consumer has already
  /// received from this buffer id. Pages handed out stay in a per-consumer
  /// unacked window until a later call's start_sequence acknowledges them,
  /// so a consumer whose response was lost in flight re-fetches with its
  /// old sequence and gets exactly the same pages again — a dropped
  /// GetPages response is invisible to the query. Completion is likewise
  /// re-observable. Pass kAutoSequence for local consumers that never
  /// retry (acks everything outstanding, serves only new pages).
  static constexpr int64_t kAutoSequence = -1;
  PagesResult GetPages(int buffer_id, int64_t start_sequence, int max_pages);

  /// Legacy single-shot form: no resume window (every page is delivered
  /// exactly once, immediately acked).
  PagesResult GetPages(int buffer_id, int max_pages) {
    return GetPages(buffer_id, kAutoSequence, max_pages);
  }

  /// Grows the buffer-ID array to `n` consumers (ids [0, n)).
  virtual void SetConsumerCount(int n) = 0;

  /// Paper end signal: stop serving `buffer_id`; its consumer observes
  /// completion on the next poll.
  virtual void EndSignal(int buffer_id) = 0;

  /// True once every consumer has observed completion.
  virtual bool AllConsumersDone() const = 0;

  // --- DOP switching (shuffle buffers only, §4.5) ---
  /// Creates a new task group of `count` consumers with buffer ids
  /// [first_buffer_id, first_buffer_id + count). The id range is assigned
  /// by the coordinator so that every task of a stage serves a consistent
  /// id space. Replays the retained page cache into the new group.
  virtual void AddTaskGroup(int count, int first_buffer_id);

  /// Routes future pages only to the most recently added group
  /// (probe-side switch); older groups complete once drained.
  virtual void SwitchToNewestGroup();

  int64_t turn_ups() const { return capacity_.turn_ups(); }
  int64_t capacity_bytes() const { return capacity_.capacity_bytes(); }
  int64_t queued_bytes() const { return queued_bytes_.load(); }

 protected:
  /// Implementation hook: hands out the next batch of *new* pages for
  /// `buffer_id` (destructive pop). The resume window above it makes the
  /// public GetPages retry-safe.
  virtual PagesResult FetchNewPages(int buffer_id, int max_pages) = 0;

  bool NoMoreInput() const {
    return producers_started_ && producer_drivers_.load() == 0;
  }

  OutputBufferConfig config_;
  TaskContext* task_ctx_;
  ElasticCapacity capacity_;
  std::atomic<int64_t> queued_bytes_{0};
  std::atomic<int> producer_drivers_{0};
  std::atomic<bool> producers_started_{false};

 private:
  /// Per-consumer delivery stream backing the resume protocol.
  struct ConsumerStream {
    int64_t window_start = 0;     // sequence of window.front()
    int64_t next_sequence = 0;    // sequence the next new page gets
    bool complete_seen = false;   // impl reported end-of-stream
    std::deque<PagePtr> window;   // delivered but unacknowledged
  };

  std::mutex stream_mutex_;
  std::map<int, ConsumerStream> streams_;  // keyed by buffer id
};

/// Arbitrary-distribution buffer (paper Fig. 10a): one page queue, any
/// consumer takes any page. Used for gather and arbitrary partitioning.
class SharedBuffer : public OutputBuffer {
 public:
  SharedBuffer(OutputBufferConfig config, TaskContext* task_ctx);

  bool AcceptingInput() const override;
  void Enqueue(const PagePtr& page) override;
  void SetConsumerCount(int n) override;
  void EndSignal(int buffer_id) override;
  bool AllConsumersDone() const override;

 protected:
  PagesResult FetchNewPages(int buffer_id, int max_pages) override;

 private:
  mutable std::mutex mutex_;
  std::deque<PagePtr> queue_;
  std::vector<bool> consumer_done_;  // indexed by buffer id
};

/// Replicating buffer for broadcast joins (Fig. 16a): every consumer gets
/// every page; the full page list is cached so consumers added at runtime
/// can replay history.
class BroadcastBuffer : public OutputBuffer {
 public:
  BroadcastBuffer(OutputBufferConfig config, TaskContext* task_ctx);

  bool AcceptingInput() const override;
  void Enqueue(const PagePtr& page) override;
  void SetConsumerCount(int n) override;
  void EndSignal(int buffer_id) override;
  bool AllConsumersDone() const override;

 protected:
  PagesResult FetchNewPages(int buffer_id, int max_pages) override;

 private:
  struct Consumer {
    size_t next_page = 0;  // index into cache_
    bool done = false;
  };

  mutable std::mutex mutex_;
  std::vector<PagePtr> cache_;
  std::vector<Consumer> consumers_;
};

/// Hash-partitioned buffer with shuffle executors, page cache, buffer-ID
/// groups and task groups (paper Fig. 10b + §4.5). The workhorse of
/// intra-stage elasticity for partitioned hash joins.
///
/// Shuffle executors are resumable units on the shared morsel-scheduler
/// pool (not dedicated threads): each pops a page, reserves the shuffle
/// CPU cost from the worker governor, yields the pool thread until the
/// grant time, then partitions the page into the live task groups. A page
/// counts as in-flight from pop to delivery, so consumers never observe a
/// spurious completion while its rows are mid-shuffle.
class ShuffleBuffer : public OutputBuffer {
 public:
  ShuffleBuffer(OutputBufferConfig config, TaskContext* task_ctx);
  ~ShuffleBuffer() override;

  bool AcceptingInput() const override;
  void Enqueue(const PagePtr& page) override;
  void SetConsumerCount(int n) override;
  void EndSignal(int buffer_id) override;
  bool AllConsumersDone() const override;

  /// Idempotent: a group with the same first_buffer_id already exists ->
  /// no-op (a retried AddOutputTaskGroup RPC must not double-create).
  void AddTaskGroup(int count, int first_buffer_id) override;
  void SwitchToNewestGroup() override;

  /// Number of task groups created so far (first = 0).
  int NumGroups() const;

  /// Bytes reshuffled from cache by the latest AddTaskGroup (Table 2's
  /// shuffle-time accounting).
  int64_t last_reshuffle_bytes() const { return last_reshuffle_bytes_.load(); }

 protected:
  PagesResult FetchNewPages(int buffer_id, int max_pages) override;

 private:
  struct Group {
    int first_buffer_id = 0;
    int count = 0;
    bool routing = true;  // receives newly produced pages
    /// Pages with sequence number < created_seq reached this group via the
    /// cache replay of AddTaskGroup; executors must not re-deliver them.
    int64_t created_seq = 0;
    std::vector<std::deque<PagePtr>> queues;
    std::vector<bool> done;       // end-signalled consumers
    std::vector<int64_t> queued;  // bytes per queue
  };

  /// One pool-scheduled shuffle executor. State that crosses quanta (the
  /// popped page and its CPU grant) lives on the unit; mutation happens
  /// only inside quanta.
  class ExecutorUnit : public Schedulable {
   public:
    explicit ExecutorUnit(ShuffleBuffer* parent) : parent_(parent) {}
    Quantum RunQuantum(int64_t quantum_us) override;

   private:
    friend class ShuffleBuffer;
    ShuffleBuffer* parent_;
    bool active_ = false;  // a popped page awaits delivery
    int64_t seq_ = 0;
    PagePtr page_;
    int64_t grant_us_ = 0;  // CPU reservation grant time
  };

  Schedulable::Quantum ExecutorQuantum(ExecutorUnit* unit, int64_t quantum_us);
  /// Partitions `page` into `group`'s queues. Caller holds mutex_.
  void PartitionIntoGroupLocked(const PagePtr& page, Group* group);
  bool DrainedLocked() const;

  mutable std::mutex mutex_;
  std::deque<std::pair<int64_t, PagePtr>> input_queue_;  // (seq, page)
  int64_t next_seq_ = 0;
  std::vector<PagePtr> cache_;
  std::vector<Group> groups_;
  int active_group_ = 0;
  int in_flight_ = 0;   // pages popped but not yet delivered
  int replaying_ = 0;   // active AddTaskGroup cache replays
  bool shutdown_ = false;
  std::atomic<int64_t> last_reshuffle_bytes_{0};
  std::vector<std::unique_ptr<ExecutorUnit>> executors_;
  // Scatter scratch reused across pages; guarded by mutex_ (the partition
  // step runs locked).
  std::vector<uint64_t> scatter_hashes_;
  std::vector<std::vector<int32_t>> scatter_selections_;
};

/// Creates the buffer implementation matching `config.partitioning`.
std::unique_ptr<OutputBuffer> MakeOutputBuffer(OutputBufferConfig config,
                                               TaskContext* task_ctx);

}  // namespace accordion

#endif  // ACCORDION_EXEC_OUTPUT_BUFFER_H_
