#ifndef ACCORDION_EXEC_DRIVER_H_
#define ACCORDION_EXEC_DRIVER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "exec/operator.h"

namespace accordion {

/// A physical operator sequence — the smallest unit of scheduling and
/// execution in a task (paper §2). One driver == one thread of simulated
/// execution: the driver moves pages between adjacent operators, relays
/// end pages (Fig. 13), and charges each operator's virtual CPU cost to
/// the worker governor while pacing itself to one simulated core.
class Driver {
 public:
  Driver(int pipeline_id, int driver_seq, std::vector<OperatorPtr> operators,
         TaskContext* task_ctx, const std::atomic<bool>* cancelled);

  /// Runs to completion; called on the driver's own thread.
  void Run();

  /// Paper end signal: asks the head (source) operator to stop early; the
  /// end page then relays through the chain, closing the driver cleanly.
  void RequestEnd();

  bool done() const { return done_.load(); }
  int pipeline_id() const { return pipeline_id_; }
  int driver_seq() const { return driver_seq_; }

 private:
  /// Charges `rows` of `op`'s per-row cost: reserves node CPU and paces
  /// the driver to at most one simulated core.
  void Charge(const Operator& op, int64_t rows);

  int pipeline_id_;
  int driver_seq_;
  std::vector<OperatorPtr> operators_;
  TaskContext* task_ctx_;
  const std::atomic<bool>* cancelled_;
  std::atomic<bool> end_requested_{false};
  std::atomic<bool> done_{false};
  int64_t start_us_ = 0;
  double virtual_us_ = 0;
};

}  // namespace accordion

#endif  // ACCORDION_EXEC_DRIVER_H_
