#ifndef ACCORDION_EXEC_DRIVER_H_
#define ACCORDION_EXEC_DRIVER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "exec/operator.h"
#include "exec/scheduler.h"

namespace accordion {

/// A physical operator sequence — the smallest unit of scheduling and
/// execution in a task (paper §2). One driver == one resumable unit on
/// the shared morsel-scheduler pool: each quantum moves pages between
/// adjacent operators and relays end pages (Fig. 13), charging each
/// operator's virtual CPU cost to the worker governor. Instead of
/// sleeping to pace itself to one simulated core, the driver records the
/// pace deadline and yields the pool thread until it; backpressure and
/// idle upstreams likewise yield instead of blocking.
class Driver : public Schedulable {
 public:
  Driver(int pipeline_id, int driver_seq, std::vector<OperatorPtr> operators,
         TaskContext* task_ctx, const std::atomic<bool>* cancelled);

  /// Runs up to `quantum_us` of operator work; called only by the pool.
  Quantum RunQuantum(int64_t quantum_us) override;

  /// Paper end signal: asks the head (source) operator to stop early; the
  /// end page then relays through the chain, closing the driver cleanly.
  void RequestEnd();

  bool done() const { return done_.load(); }
  int pipeline_id() const { return pipeline_id_; }
  int driver_seq() const { return driver_seq_; }

 private:
  /// Charges `rows` of `op`'s per-row cost: reserves node CPU and records
  /// the pace deadline (at most one simulated core per driver).
  void Charge(const Operator& op, int64_t rows);

  int pipeline_id_;
  int driver_seq_;
  std::vector<OperatorPtr> operators_;
  TaskContext* task_ctx_;
  const std::atomic<bool>* cancelled_;
  std::atomic<bool> end_requested_{false};
  std::atomic<bool> done_{false};

  // Quantum-crossing execution state (touched only under the scheduler's
  // run-exclusivity: one quantum of a unit at a time).
  bool started_ = false;
  std::vector<bool> finish_relayed_;
  int64_t start_us_ = 0;
  double virtual_us_ = 0;
  /// Absolute time before which the driver owes simulated CPU pacing.
  int64_t pace_until_us_ = 0;
};

}  // namespace accordion

#endif  // ACCORDION_EXEC_DRIVER_H_
