#ifndef ACCORDION_EXEC_CONFIG_H_
#define ACCORDION_EXEC_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/retry_policy.h"
#include "common/status.h"

namespace accordion {

class FaultInjector;
class MorselScheduler;

/// Memory knobs, collected in one struct on the public surface. All byte
/// budgets use 0 to mean "unlimited"; negative values are rejected by
/// EngineConfig::Normalize with kInvalidArgument.
struct MemoryConfig {
  /// Initial capacity of every elastic buffer — "the size of a page"
  /// (paper §4.2.2). Small relative to table sizes so producers feel
  /// backpressure and scan progress tracks consumer pace.
  int64_t initial_buffer_bytes = 8 * 1024;

  /// Hard cap for elastic buffer growth.
  int64_t max_buffer_bytes = 4LL * 1024 * 1024;

  /// Capacity used when EngineConfig::elastic_buffers is false (the Presto
  /// baseline mode of Fig. 20; Presto default: 32 MB).
  int64_t fixed_buffer_bytes = 32LL * 1024 * 1024;

  /// Advisory per-worker memory budget. Per-query budgets (below, and the
  /// QueryOptions::max_memory_bytes override) must not exceed it.
  int64_t worker_memory_bytes = 0;

  /// Per-query budget for one hash-join build side (tracked per task).
  /// When a join's accumulated build bytes pass this, the build switches
  /// to grace spill: partitions scatter to temp files and build/probe
  /// proceed partition-pairwise. 0 disables spilling.
  int64_t query_build_bytes = 0;

  /// Directory for spill temp files. Empty: the system temp directory.
  std::string spill_dir;

  /// Write-buffer size per spill file, and the target build-chunk size
  /// when a skewed partition is processed in chunks.
  int64_t spill_chunk_bytes = 1 << 20;
};

/// Which probe kernel FindJoinBatch uses for single fixed-width join keys.
enum class ProbePathMode {
  kAuto,    // AVX2 when the CPU supports it, scalar otherwise
  kScalar,  // force the scalar kernel
};

/// Hash-join shape knobs: probe kernel selection, the radix-partitioned
/// build threshold, and grace-spill partitioning.
struct JoinConfig {
  ProbePathMode probe = ProbePathMode::kAuto;

  /// Build-row count at which an in-memory join build switches from one
  /// flat table to radix-partitioned cache-sized tables (0 disables the
  /// radix build). Only single fixed-width join keys partition; other key
  /// shapes keep the flat table.
  int64_t radix_min_build_rows = 1 << 17;

  /// Target distinct keys per radix partition table, sized so one
  /// partition's slots + keys stay roughly L2-resident.
  int64_t radix_partition_rows = 1 << 13;

  /// Upper bound on radix bits for the in-memory partitioned build.
  int radix_max_bits = 8;

  /// log2 of the spill fan-out: each grace-spill level scatters into
  /// 2^bits partition files.
  int spill_partition_bits = 4;

  /// Maximum spill repartition depth for skewed partitions. A partition
  /// still over budget at max depth is processed in build chunks
  /// (multiple probe passes) instead of recursing further.
  int max_spill_recursion = 3;
};

/// Virtual per-row CPU costs (microseconds of simulated core time) charged
/// by drivers to their worker's CPU governor. These calibrate the
/// *relative* weight of operators — scans and joins dominate, exchanges
/// are cheap — so that throughput scales with DOP until a node's simulated
/// cores saturate, which is the behaviour the paper's experiments depend
/// on. `scale` compresses or stretches all experiments uniformly.
struct CostModel {
  double scan_us = 30;
  double filter_us = 4;
  double project_us = 4;
  double hash_build_us = 25;
  double probe_us = 25;
  double probe_output_us = 5;
  double partial_agg_us = 15;
  double final_agg_us = 15;
  double topn_us = 10;
  double exchange_us = 2;
  double local_exchange_us = 1;
  double task_output_us = 8;
  double shuffle_executor_us = 6;
  double scale = 1.0;
};

/// Engine-wide tunables shared by tasks, buffers and the simulated
/// cluster. One instance per cluster; must outlive all queries.
struct EngineConfig {
  /// Rows per page produced by table scans.
  int64_t batch_rows = 256;

  CostModel cost;

  /// Simulated latency of one RESTful/RPC call (paper: 1–10 ms).
  double rpc_latency_ms = 2.0;

  /// Memory budgets, buffer capacities and spill knobs.
  MemoryConfig memory;

  /// Join probe/build/spill shape knobs.
  JoinConfig join;

  /// DEPRECATED aliases for the buffer fields now living in `memory`
  /// (one release of grace). -1 means unset; a set alias is merged into
  /// `memory` by Normalize(), which rejects a conflicting pair (alias and
  /// canonical field both set to different values) with kInvalidArgument.
  /// Runtime readers go through the buffer_*_bytes() accessors, so a
  /// config that never passed through Normalize() still honors them.
  int64_t initial_buffer_bytes = -1;
  int64_t max_buffer_bytes = -1;
  int64_t fixed_buffer_bytes = -1;

  int64_t buffer_initial_bytes() const {
    return initial_buffer_bytes >= 0 ? initial_buffer_bytes
                                     : memory.initial_buffer_bytes;
  }
  int64_t buffer_max_bytes() const {
    return max_buffer_bytes >= 0 ? max_buffer_bytes : memory.max_buffer_bytes;
  }
  int64_t buffer_fixed_bytes() const {
    return fixed_buffer_bytes >= 0 ? fixed_buffer_bytes
                                   : memory.fixed_buffer_bytes;
  }

  /// Merges the deprecated aliases into `memory` and validates the whole
  /// config. Nonsensical combinations (negative budgets, max < initial
  /// buffer capacity, per-query budget above the worker budget, zero spill
  /// chunk, out-of-range radix/spill bits) are rejected with
  /// kInvalidArgument — never silently clamped. Idempotent; called by
  /// AccordionCluster at construction.
  Status Normalize();

  /// Consumer-side resize cadence for elastic buffers (paper: ~500 ms).
  int64_t buffer_resize_interval_ms = 500;

  /// Shuffle-executor threads per shuffle buffer (paper Fig. 10b).
  int shuffle_executors = 2;

  /// Max pages returned by one GetPages RPC.
  int max_pages_per_fetch = 8;

  /// Partial aggregation flush threshold (groups) — partial state is
  /// destroy-and-rebuildable (paper §4.1).
  int64_t partial_agg_flush_groups = 1 << 16;

  /// Group cardinality at which a driver's aggregation switches from one
  /// flat hash table to radix-partitioned tables (0 disables radix
  /// aggregation). Below the threshold the single-table path is used
  /// unchanged, so low-cardinality queries pay nothing.
  int64_t radix_agg_min_groups = 1 << 14;

  /// Target distinct groups per radix partition, sized so one partition's
  /// slots + keys + accumulators stay roughly L2-resident.
  int64_t radix_agg_partition_groups = 1 << 12;

  /// Upper bound on radix bits (2^bits partition tables per driver).
  int radix_agg_max_bits = 10;

  /// Rows buffered per radix partition before they are drained through
  /// that partition's table (amortizes per-batch table overhead).
  int64_t radix_agg_drain_rows = 2048;

  /// Idle wait inside driver loops when no progress was possible.
  int64_t driver_idle_sleep_us = 1000;

  /// Deterministic NULL injection at scan time (differential testing of
  /// three-valued logic): every scanned cell goes NULL with this
  /// probability, decided by a pure hash of the row's content and the
  /// seed (vector/page.h InjectNulls), so every split shape / dop / batch
  /// size sees identical nullified data. 0 disables it (the production
  /// default); the scalar reference oracle applies the same function.
  double null_injection_rate = 0.0;
  uint64_t null_injection_seed = 0;

  /// When a buffer is "always fixed size" (the Presto baseline mode of
  /// Fig. 20 / §2 challenge 3), elastic resizing is disabled and
  /// memory.fixed_buffer_bytes is used as the capacity.
  bool elastic_buffers = true;

  // --- fault model (chaos harness, tests, benches) ---

  /// Optional fault-injection control plane consulted by the RpcBus on
  /// every control- and data-plane call. Null (default) means a
  /// fault-free cluster; the owner (test/bench) keeps it alive for the
  /// cluster's lifetime.
  FaultInjector* fault_injector = nullptr;

  /// Retry schedule for idempotent RPCs: the coordinator's control-plane
  /// calls and the exchange clients' GetPages pulls. Retry exhaustion
  /// escalates the query to kFailed.
  RetryPolicy rpc_retry;

  /// Cadence of the coordinator's health monitor, which escalates worker
  /// crashes and retry-exhausted tasks to query failure.
  int64_t health_check_interval_ms = 20;

  // --- morsel scheduler (shared CPU pool) ---

  /// The shared pool that runs every driver, exchange fetcher and shuffle
  /// executor as resumable quanta. Null (default) means the process-wide
  /// default pool; clusters that want an isolated or size-capped pool own
  /// a MorselScheduler and point this at it.
  MorselScheduler* scheduler = nullptr;

  /// Pool size for a cluster-owned scheduler (see AccordionCluster):
  /// 0 means hardware_concurrency() with a fallback of 4 when that
  /// reports 0. Ignored when `scheduler` is set explicitly.
  int scheduler_threads = 0;

  /// Target wall time of one scheduling quantum.
  int64_t scheduler_quantum_us = 1000;

  // --- cluster-level admission (coordinator) ---

  /// Global inflight limiter: queries running cluster-wide, across all
  /// sessions. Submit fails with kResourceExhausted at the cap
  /// (<= 0: unlimited). Complements the per-session cap in
  /// SessionOptions::max_concurrent_queries.
  int max_concurrent_queries = 0;

  /// Per-tenant quota (QueryOptions::tenant): running queries per tenant
  /// (<= 0: unlimited).
  int max_queries_per_tenant = 0;
};

/// Per-simulated-node resources (paper: c5.2xlarge, 8 vCPU, 10 Gbps).
struct NodeConfig {
  double cpu_cores = 4.0;
  double nic_bytes_per_sec = 256.0 * 1024 * 1024;
  double cpu_burst_seconds = 0.05;
  double nic_burst_bytes = 4.0 * 1024 * 1024;
};

}  // namespace accordion

#endif  // ACCORDION_EXEC_CONFIG_H_
