#include "exec/exchange_client.h"

#include "common/clock.h"
#include "common/logging.h"

namespace accordion {

ExchangeClient::ExchangeClient(TaskContext* task_ctx, int own_buffer_id,
                               FetchPagesFn fetch)
    : task_ctx_(task_ctx),
      own_buffer_id_(own_buffer_id),
      fetch_(std::move(fetch)),
      capacity_(&task_ctx->config(), task_ctx) {}

ExchangeClient::~ExchangeClient() {
  shutdown_ = true;
  if (fetcher_.joinable()) fetcher_.join();
}

void ExchangeClient::AddRemoteSplit(const RemoteSplit& split) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& s : sources_) {
    if (s.split == split) return;  // idempotent registration
  }
  sources_.push_back(Source{split, false});
}

void ExchangeClient::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  started_ = true;
  fetcher_ = std::thread([this] { FetchLoop(); });
}

bool ExchangeClient::AllSourcesFinishedLocked() const {
  if (sources_.empty()) return false;
  for (const auto& s : sources_) {
    if (!s.finished) return false;
  }
  return true;
}

void ExchangeClient::FetchLoop() {
  size_t cursor = 0;
  while (!shutdown_.load()) {
    // Backpressure: respect the elastic receive-buffer capacity.
    if (!capacity_.Accepting(buffered_bytes_.load())) {
      SleepForMillis(1);
      continue;
    }
    RemoteSplit target;
    bool have_target = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (AllSourcesFinishedLocked()) {
        complete_ = true;
        return;
      }
      for (size_t probe = 0; probe < sources_.size(); ++probe) {
        size_t i = (cursor + probe) % sources_.size();
        if (!sources_[i].finished) {
          target = sources_[i].split;
          cursor = i + 1;
          have_target = true;
          break;
        }
      }
    }
    if (!have_target) {
      SleepForMillis(1);
      continue;
    }
    PagesResult result = fetch_(
        target, own_buffer_id_, task_ctx_->config().max_pages_per_fetch);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto& page : result.pages) {
        buffered_bytes_ += page->ByteSize();
        queue_.push_back(std::move(page));
      }
      if (result.complete) {
        for (auto& s : sources_) {
          if (s.split == target) s.finished = true;
        }
        if (AllSourcesFinishedLocked()) {
          complete_ = true;
          return;
        }
      }
    }
    if (result.pages.empty() && !result.complete) SleepForMillis(4);
  }
}

PagePtr ExchangeClient::Poll() {
  PagePtr page;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!queue_.empty()) {
      page = queue_.front();
      queue_.pop_front();
    }
  }
  if (page != nullptr) {
    buffered_bytes_ -= page->ByteSize();
    capacity_.OnConsume(page->ByteSize());
    return page;
  }
  if (complete_.load()) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return Page::End();
    return nullptr;
  }
  // Consumption outpaced production: grow the receive buffer and count a
  // turn-up (paper §5.1 bottleneck signal).
  capacity_.OnEmptyPop();
  return nullptr;
}

int ExchangeClient::num_sources() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(sources_.size());
}

}  // namespace accordion
