#include "exec/exchange_client.h"

#include <algorithm>
#include <functional>

#include "common/clock.h"
#include "common/logging.h"

namespace accordion {

namespace {
/// Deterministic per-client jitter seed: clients of the same task
/// decorrelate without any global randomness source.
uint64_t JitterSeed(const std::string& task_id, int buffer_id) {
  return std::hash<std::string>{}(task_id) * 1099511628211ULL +
         static_cast<uint64_t>(buffer_id) + 1;
}
}  // namespace

ExchangeClient::ExchangeClient(TaskContext* task_ctx, int own_buffer_id,
                               FetchPagesFn fetch,
                               FetchPagesDeferredFn fetch_deferred)
    : task_ctx_(task_ctx),
      own_buffer_id_(own_buffer_id),
      fetch_(std::move(fetch)),
      fetch_deferred_(std::move(fetch_deferred)),
      capacity_(&task_ctx->config(), task_ctx),
      rng_(JitterSeed(task_ctx->task_id(), own_buffer_id)) {}

ExchangeClient::~ExchangeClient() {
  // Safe also when Start() was never called: Retire on an unknown unit is
  // a no-op. Blocks at most one quantum if the fetcher is mid-run.
  task_ctx_->scheduler()->Retire(this);
}

void ExchangeClient::AddRemoteSplit(const RemoteSplit& split) {
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& s : sources_) {
      if (s.split == split) return;  // idempotent registration
    }
    Source source;
    source.split = split;
    sources_.push_back(std::move(source));
    wake = started_;
  }
  // A fetcher idling in its empty backoff should notice new upstreams
  // promptly (DOP increases wire splits while the query runs).
  if (wake) task_ctx_->scheduler()->Wake(this);
}

void ExchangeClient::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_) return;
    started_ = true;
  }
  task_ctx_->scheduler()->Enqueue(task_ctx_->scheduler_group(),
                                  NonOwning(this));
}

bool ExchangeClient::AllSourcesFinishedLocked() const {
  if (sources_.empty()) return false;
  for (const auto& s : sources_) {
    if (!s.finished) return false;
  }
  return true;
}

void ExchangeClient::Fail(const Status& status) {
  failed_ = true;
  task_ctx_->ReportFailure(
      status.WithContext("exchange client of task " + task_ctx_->task_id()));
}

void ExchangeClient::CommitPending() {
  PagesResult result = std::move(pending_.result);
  const RemoteSplit target = pending_.target;
  pending_ = PendingFetch{};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& s : sources_) {
      if (!(s.split == target)) continue;
      s.attempts = 0;
      s.next_sequence += static_cast<int64_t>(result.pages.size());
    }
    for (auto& page : result.pages) {
      buffered_bytes_ += page->ByteSize();
      queue_.push_back(std::move(page));
    }
    if (result.complete) {
      for (auto& s : sources_) {
        if (s.split == target) s.finished = true;
      }
      if (AllSourcesFinishedLocked()) {
        complete_ = true;
        return;
      }
    }
  }
  if (result.pages.empty() && !result.complete) {
    // Exponential idle backoff instead of a fixed hot-poll cadence:
    // upstream is slow, so ease off up to ~16 ms between probes.
    ++empty_streak_;
    int64_t backoff_ms =
        std::min<int64_t>(1LL << std::min<int64_t>(empty_streak_, 4), 16);
    backoff_until_us_ = NowMicros() + backoff_ms * 1000;
  } else {
    empty_streak_ = 0;
  }
}

Schedulable::Quantum ExchangeClient::RunQuantum(int64_t quantum_us) {
  (void)quantum_us;  // one fetch round per quantum
  const RetryPolicy& retry = task_ctx_->config().rpc_retry;
  if (failed_.load()) {
    // Unrecoverable: idle until the coordinator aborts the task. Never
    // complete the stream — that would truncate results silently.
    return Quantum::Waiting(NowMicros() + 5000);
  }
  // Commit a fetch whose simulated response was still in flight.
  if (pending_.active) {
    if (NowMicros() < pending_.ready_at_us) {
      return Quantum::Waiting(pending_.ready_at_us);
    }
    CommitPending();
    if (complete_.load()) return Quantum::Finished();
  }
  if (backoff_until_us_ > NowMicros()) {
    return Quantum::Waiting(backoff_until_us_);
  }
  // Backpressure: respect the elastic receive-buffer capacity.
  if (!capacity_.Accepting(buffered_bytes_.load())) {
    return Quantum::Waiting(NowMicros() + 1000);
  }
  RemoteSplit target;
  int64_t start_sequence = 0;
  bool have_target = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (AllSourcesFinishedLocked()) {
      complete_ = true;
      return Quantum::Finished();
    }
    for (size_t probe = 0; probe < sources_.size(); ++probe) {
      size_t i = (cursor_ + probe) % sources_.size();
      if (!sources_[i].finished) {
        target = sources_[i].split;
        start_sequence = sources_[i].next_sequence;
        cursor_ = i + 1;
        have_target = true;
        break;
      }
    }
  }
  if (!have_target) return Quantum::Waiting(NowMicros() + 1000);

  int64_t ready_at_us = NowMicros();
  Result<PagesResult> fetched =
      fetch_deferred_
          ? fetch_deferred_(target, own_buffer_id_, start_sequence,
                            task_ctx_->config().max_pages_per_fetch,
                            &ready_at_us)
          : fetch_(target, own_buffer_id_, start_sequence,
                   task_ctx_->config().max_pages_per_fetch);
  if (!fetched.ok()) {
    const Status& error = fetched.status();
    if (!IsRetryableRpcStatus(error)) {
      Fail(error);
      return Quantum::Runnable();
    }
    int attempts = 0;
    int64_t elapsed_ms = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto& s : sources_) {
        if (!(s.split == target)) continue;
        if (s.attempts == 0) s.first_failure_ms = NowMillis();
        attempts = ++s.attempts;
        elapsed_ms = NowMillis() - s.first_failure_ms;
      }
    }
    if (attempts >= retry.max_attempts ||
        elapsed_ms > retry.attempt_deadline_ms) {
      Fail(error.WithContext("GetPages from task " + target.task.ToString() +
                             " failed after " + std::to_string(attempts) +
                             " attempts"));
      return Quantum::Runnable();
    }
    task_ctx_->AddRpcRetry();
    return Quantum::Waiting(NowMicros() +
                            RetryBackoffMs(retry, attempts, &rng_) * 1000);
  }
  pending_.active = true;
  pending_.target = target;
  pending_.result = std::move(fetched).value();
  pending_.ready_at_us = ready_at_us;
  if (NowMicros() < pending_.ready_at_us) {
    // Response still in flight (simulated RPC latency / NIC grant): yield
    // the pool thread until it lands.
    return Quantum::Waiting(pending_.ready_at_us);
  }
  CommitPending();
  if (complete_.load()) return Quantum::Finished();
  if (backoff_until_us_ > NowMicros()) {
    return Quantum::Waiting(backoff_until_us_);
  }
  return Quantum::Runnable();
}

PagePtr ExchangeClient::Poll() {
  PagePtr page;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!queue_.empty()) {
      page = queue_.front();
      queue_.pop_front();
    }
  }
  if (page != nullptr) {
    buffered_bytes_ -= page->ByteSize();
    capacity_.OnConsume(page->ByteSize());
    return page;
  }
  if (complete_.load()) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return Page::End();
    return nullptr;
  }
  // Consumption outpaced production: grow the receive buffer and count a
  // turn-up (paper §5.1 bottleneck signal). A failed client keeps
  // returning nullptr until the coordinator aborts the query.
  capacity_.OnEmptyPop();
  return nullptr;
}

int ExchangeClient::num_sources() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(sources_.size());
}

}  // namespace accordion
