#ifndef ACCORDION_EXEC_LOCAL_EXCHANGE_H_
#define ACCORDION_EXEC_LOCAL_EXCHANGE_H_

#include <atomic>
#include <deque>
#include <mutex>

#include "exec/config.h"
#include "vector/page.h"

namespace accordion {

/// The in-task pipeline-breaker structure (paper Figs. 6/7): sink drivers
/// push pages in, source drivers pull pages out. Arbitrary distribution —
/// any source driver may take any page (the build side's shared hash
/// table makes per-driver hash partitioning unnecessary).
///
/// End handling (paper §4.3): when all sink drivers have finished and the
/// queue drains, every source poll returns the end page. The task can
/// also post targeted end pages to retire exactly one source driver
/// (intra-task DOP decrease).
class LocalExchange {
 public:
  explicit LocalExchange(const EngineConfig* config) : config_(config) {}

  // --- sink side ---
  bool AcceptingInput() const {
    return queued_bytes_.load() < config_->buffer_initial_bytes() * 8;
  }
  void Enqueue(const PagePtr& page);
  void AddSinkDriver() { ++sink_drivers_; }
  void SinkDriverFinished();

  // --- source side ---
  /// Data page, nullptr (nothing ready), or an end page (driver retires).
  PagePtr Poll();

  /// Posts one end page; exactly one source driver will consume it and
  /// shut down (paper's end-signal for source pipelines).
  void PostEndPage();

  int64_t queued_bytes() const { return queued_bytes_.load(); }

 private:
  bool CompleteLocked() const {
    return started_ && sink_drivers_.load() == 0 && queue_.empty();
  }

  const EngineConfig* config_;
  mutable std::mutex mutex_;
  std::deque<PagePtr> queue_;  // may contain targeted end pages
  std::atomic<int64_t> queued_bytes_{0};
  std::atomic<int> sink_drivers_{0};
  std::atomic<bool> started_{false};
};

}  // namespace accordion

#endif  // ACCORDION_EXEC_LOCAL_EXCHANGE_H_
