#ifndef ACCORDION_SCRIPT_SCRIPT_H_
#define ACCORDION_SCRIPT_SCRIPT_H_

#include <map>
#include <string>
#include <vector>

#include "api/session.h"
#include "tuner/auto_tuner.h"

namespace accordion {

/// The paper's built-in experiment scripting language (§6.1): "Accordion
/// includes a built-in scripting language for controlling query initiation
/// and parallelism adjustments at specified times. We use the script
/// executor to track throughput variations, manage parallelism changes
/// and result recording."
///
/// Queries run through the Session front door, so scripts drive exactly
/// the surface clients use — registered plans or plain SQL text.
///
/// Grammar (one statement per line, '#' comments):
///
///   option stage_dop <n>            -- initial stage DOP for submit
///   option task_dop <n>             -- initial task DOP for submit
///   submit <name>                   -- start a registered plan or SQL query
///   at <seconds> stage_dop <stage> <dop>
///   at <seconds> task_dop <stage> <dop>
///   at_progress <frac> <stage> stage_dop <stage> <dop>
///   wait [timeout-seconds]          -- drain the query's result cursor
///
/// Tuning statements go through the auto-tuner's request filter, so the
/// report records accepts and rejections exactly like the paper's figures.
class ScriptExecutor {
 public:
  ScriptExecutor(Session* session, AutoTuner* tuner)
      : session_(session), tuner_(tuner) {}

  /// Makes a hand-built plan available to `submit`.
  void RegisterPlan(const std::string& name, PlanNodePtr plan);

  /// Makes a SQL query available to `submit` under `name`.
  void RegisterSql(const std::string& name, std::string sql);

  struct ActionRecord {
    double at_seconds = 0;
    std::string statement;
    bool accepted = true;
    std::string detail;  // rejection reason / switch timing
  };

  struct Report {
    std::string query_id;
    double total_seconds = 0;
    bool finished = false;
    bool timed_out = false;  // `wait` hit its deadline; query kept running
    std::string failure;  // non-timeout `wait` failure (abort, engine error)
    int64_t result_rows = 0;
    std::vector<ActionRecord> actions;

    std::string ToString() const;
  };

  /// Parses and runs a script to completion.
  Result<Report> Run(const std::string& script_text);

 private:
  Session* session_;
  AutoTuner* tuner_;
  std::map<std::string, PlanNodePtr> plans_;
  std::map<std::string, std::string> sql_;
};

}  // namespace accordion

#endif  // ACCORDION_SCRIPT_SCRIPT_H_
