#ifndef ACCORDION_SCRIPT_SCRIPT_H_
#define ACCORDION_SCRIPT_SCRIPT_H_

#include <map>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "tuner/auto_tuner.h"

namespace accordion {

/// The paper's built-in experiment scripting language (§6.1): "Accordion
/// includes a built-in scripting language for controlling query initiation
/// and parallelism adjustments at specified times. We use the script
/// executor to track throughput variations, manage parallelism changes
/// and result recording."
///
/// Grammar (one statement per line, '#' comments):
///
///   option stage_dop <n>            -- initial stage DOP for submit
///   option task_dop <n>             -- initial task DOP for submit
///   submit <plan-name>              -- start a registered plan
///   at <seconds> stage_dop <stage> <dop>
///   at <seconds> task_dop <stage> <dop>
///   at_progress <frac> <stage> stage_dop <stage> <dop>
///   wait [timeout-seconds]          -- block until the query finishes
///
/// Tuning statements go through the auto-tuner's request filter, so the
/// report records accepts and rejections exactly like the paper's figures.
class ScriptExecutor {
 public:
  ScriptExecutor(Coordinator* coordinator, AutoTuner* tuner)
      : coordinator_(coordinator), tuner_(tuner) {}

  /// Makes a plan available to `submit`.
  void RegisterPlan(const std::string& name, PlanNodePtr plan);

  struct ActionRecord {
    double at_seconds = 0;
    std::string statement;
    bool accepted = true;
    std::string detail;  // rejection reason / switch timing
  };

  struct Report {
    std::string query_id;
    double total_seconds = 0;
    bool finished = false;
    std::vector<ActionRecord> actions;

    std::string ToString() const;
  };

  /// Parses and runs a script to completion.
  Result<Report> Run(const std::string& script_text);

 private:
  Coordinator* coordinator_;
  AutoTuner* tuner_;
  std::map<std::string, PlanNodePtr> plans_;
};

}  // namespace accordion

#endif  // ACCORDION_SCRIPT_SCRIPT_H_
