#include "script/script.h"

#include <sstream>

#include "common/clock.h"
#include "tuner/predictor.h"

namespace accordion {
namespace {

std::vector<std::string> SplitWords(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> words;
  std::string word;
  while (in >> word) {
    if (word[0] == '#') break;  // comment
    words.push_back(word);
  }
  return words;
}

Result<int64_t> ParseInt(const std::string& word) {
  char* end = nullptr;
  int64_t value = std::strtoll(word.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::ParseError("expected integer, got '" + word + "'");
  }
  return value;
}

Result<double> ParseDouble(const std::string& word) {
  char* end = nullptr;
  double value = std::strtod(word.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return Status::ParseError("expected number, got '" + word + "'");
  }
  return value;
}

}  // namespace

void ScriptExecutor::RegisterPlan(const std::string& name, PlanNodePtr plan) {
  plans_[name] = std::move(plan);
}

void ScriptExecutor::RegisterSql(const std::string& name, std::string sql) {
  sql_[name] = std::move(sql);
}

std::string ScriptExecutor::Report::ToString() const {
  std::ostringstream out;
  std::string state = finished ? " finished" : " (running)";
  if (!finished && timed_out) state = " (wait timed out)";
  if (!finished && !failure.empty()) state = " FAILED: " + failure;
  out << "query " << query_id << state << " in " << total_seconds << "s, "
      << result_rows << " result rows\n";
  for (const auto& action : actions) {
    out << "  [" << action.at_seconds << "s] " << action.statement << " -> "
        << (action.accepted ? "ACCEPT" : "REJECT");
    if (!action.detail.empty()) out << " (" << action.detail << ")";
    out << "\n";
  }
  return out.str();
}

Result<ScriptExecutor::Report> ScriptExecutor::Run(
    const std::string& script_text) {
  Report report;
  QueryOptions options = session_->options().query_defaults;
  Stopwatch sw;
  QueryHandlePtr query;

  auto tune = [&](const std::string& mode, int stage, int dop,
                  const std::string& statement) {
    ActionRecord record;
    record.statement = statement;
    record.at_seconds = sw.ElapsedSeconds();
    Status st;
    if (mode == "stage_dop") {
      DopSwitchReport switch_report;
      st = tuner_->Tune(report.query_id, stage, dop, &switch_report);
      if (st.ok() && switch_report.total_seconds > 0) {
        std::ostringstream detail;
        detail << "state transfer " << switch_report.total_seconds << "s";
        record.detail = detail.str();
      }
    } else {
      st = query->SetTaskDop(stage, dop);
    }
    record.accepted = st.ok();
    if (!st.ok()) record.detail = st.ToString();
    report.actions.push_back(std::move(record));
  };

  std::istringstream in(script_text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::vector<std::string> words = SplitWords(line);
    if (words.empty()) continue;
    const std::string& verb = words[0];
    auto fail = [&](const std::string& why) {
      return Status::ParseError("script line " + std::to_string(line_number) +
                                ": " + why);
    };

    if (verb == "option") {
      if (words.size() != 3) return fail("option <name> <value>");
      ACCORDION_ASSIGN_OR_RETURN(int64_t value, ParseInt(words[2]));
      if (words[1] == "stage_dop") {
        options.stage_dop = static_cast<int>(value);
      } else if (words[1] == "task_dop") {
        options.task_dop = static_cast<int>(value);
      } else {
        return fail("unknown option " + words[1]);
      }
    } else if (verb == "submit") {
      if (words.size() != 2) return fail("submit <name>");
      auto plan_it = plans_.find(words[1]);
      auto sql_it = sql_.find(words[1]);
      if (plan_it == plans_.end() && sql_it == sql_.end()) {
        return fail("no plan or SQL registered as " + words[1]);
      }
      auto submitted = plan_it != plans_.end()
                           ? session_->Execute(plan_it->second, options)
                           : session_->Execute(sql_it->second, options);
      ACCORDION_RETURN_NOT_OK(submitted.status());
      query = *submitted;
      report.query_id = query->id();
      sw.Restart();
    } else if (verb == "at") {
      if (query == nullptr) return fail("'at' before submit");
      if (words.size() != 5) return fail("at <t> stage_dop|task_dop <s> <d>");
      ACCORDION_ASSIGN_OR_RETURN(double at_s, ParseDouble(words[1]));
      ACCORDION_ASSIGN_OR_RETURN(int64_t stage, ParseInt(words[3]));
      ACCORDION_ASSIGN_OR_RETURN(int64_t dop, ParseInt(words[4]));
      SleepForMicros(static_cast<int64_t>(at_s * 1e6) - sw.ElapsedMicros());
      tune(words[2], static_cast<int>(stage), static_cast<int>(dop), line);
    } else if (verb == "at_progress") {
      if (query == nullptr) return fail("'at_progress' before submit");
      if (words.size() != 6) {
        return fail("at_progress <frac> <scan-stage> stage_dop <s> <d>");
      }
      ACCORDION_ASSIGN_OR_RETURN(double frac, ParseDouble(words[1]));
      ACCORDION_ASSIGN_OR_RETURN(int64_t watch, ParseInt(words[2]));
      ACCORDION_ASSIGN_OR_RETURN(int64_t stage, ParseInt(words[4]));
      ACCORDION_ASSIGN_OR_RETURN(int64_t dop, ParseInt(words[5]));
      while (!query->Finished()) {
        auto estimate = tuner_->predictor()->EstimateRemaining(
            report.query_id, static_cast<int>(watch));
        if (estimate.ok() && estimate->progress >= frac) break;
        SleepForMillis(150);
      }
      tune(words[3], static_cast<int>(stage), static_cast<int>(dop), line);
    } else if (verb == "wait") {
      if (query == nullptr) return fail("'wait' before submit");
      double timeout_s = 600;
      if (words.size() == 2) {
        ACCORDION_ASSIGN_OR_RETURN(timeout_s, ParseDouble(words[1]));
      }
      ResultCursor cursor = query->Cursor();
      auto pages = cursor.Drain(static_cast<int64_t>(timeout_s * 1e3));
      if (pages.ok()) {
        report.finished = true;
        for (const auto& page : *pages) report.result_rows += page->num_rows();
      } else if (pages.status().code() == StatusCode::kDeadlineExceeded) {
        report.timed_out = true;  // query left running and abortable
      } else {
        report.failure = pages.status().ToString();  // abort / engine error
      }
    } else {
      return fail("unknown statement '" + verb + "'");
    }
  }
  report.total_seconds = sw.ElapsedSeconds();
  return report;
}

}  // namespace accordion
