#include "storage/csv.h"

#include <charconv>
#include <cstdio>
#include <limits>

#include "common/logging.h"
#include "optimizer/stats.h"

namespace accordion {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

void AppendField(std::string* line, const std::string& field) {
  if (!NeedsQuoting(field)) {
    *line += field;
    return;
  }
  line->push_back('"');
  for (char c : field) {
    if (c == '"') line->push_back('"');
    line->push_back(c);
  }
  line->push_back('"');
}

std::string FormatField(const Column& col, int64_t row) {
  switch (col.type()) {
    case DataType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", col.DoubleAt(row));
      return buf;
    }
    case DataType::kString:
      return col.StrAt(row);
    case DataType::kDate:
      return FormatDate(col.IntAt(row));
    default:
      return std::to_string(col.IntAt(row));
  }
}

/// Splits one CSV record (handles quotes). Returns false on malformed input.
bool SplitRecord(const std::string& line, std::vector<std::string>* fields) {
  fields->clear();
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields->push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) return false;
  fields->push_back(std::move(current));
  return true;
}

}  // namespace

Status WriteCsvSplit(const std::string& path,
                     const std::vector<PagePtr>& pages) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  std::string line;
  for (const auto& page : pages) {
    for (int64_t r = 0; r < page->num_rows(); ++r) {
      line.clear();
      for (int c = 0; c < page->num_columns(); ++c) {
        if (c > 0) line.push_back(',');
        AppendField(&line, FormatField(page->column(c), r));
      }
      line.push_back('\n');
      out << line;
    }
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

CsvPageSource::CsvPageSource(std::string path, TableSchema schema,
                             int64_t batch_rows)
    : path_(std::move(path)),
      schema_(std::move(schema)),
      batch_rows_(batch_rows),
      in_(path_) {
  if (!in_) status_ = Status::IoError("cannot open for read: " + path_);
}

PagePtr CsvPageSource::Next() {
  if (!status_.ok() || !in_) return nullptr;
  std::vector<Column> cols;
  for (const auto& def : schema_.columns()) cols.emplace_back(def.type);
  int64_t rows = 0;
  std::string line;
  std::vector<std::string> fields;
  while (rows < batch_rows_ && std::getline(in_, line)) {
    if (line.empty()) continue;
    if (!SplitRecord(line, &fields) ||
        fields.size() != static_cast<size_t>(schema_.num_columns())) {
      status_ = Status::ParseError("malformed CSV record in " + path_);
      return nullptr;
    }
    for (int c = 0; c < schema_.num_columns(); ++c) {
      switch (schema_.TypeOf(c)) {
        case DataType::kDouble: {
          double v = 0;
          auto [ptr, ec] = std::from_chars(
              fields[c].data(), fields[c].data() + fields[c].size(), v);
          if (ec != std::errc()) {
            status_ = Status::ParseError("bad double '" + fields[c] + "'");
            return nullptr;
          }
          cols[c].AppendDouble(v);
          break;
        }
        case DataType::kString:
          cols[c].AppendStr(fields[c]);
          break;
        case DataType::kDate: {
          int64_t days = ParseDate(fields[c]);
          if (days == std::numeric_limits<int64_t>::min()) {
            status_ = Status::ParseError("bad date '" + fields[c] + "'");
            return nullptr;
          }
          cols[c].AppendInt(days);
          break;
        }
        default: {
          int64_t v = 0;
          auto [ptr, ec] = std::from_chars(
              fields[c].data(), fields[c].data() + fields[c].size(), v);
          if (ec != std::errc()) {
            status_ = Status::ParseError("bad int '" + fields[c] + "'");
            return nullptr;
          }
          cols[c].AppendInt(v);
          break;
        }
      }
    }
    ++rows;
  }
  if (rows == 0) return nullptr;
  return Page::Make(std::move(cols));
}

Result<TableStats> CollectCsvSplitStats(const std::string& path,
                                        const TableSchema& schema,
                                        int64_t batch_rows) {
  CsvPageSource source(path, schema, batch_rows);
  ACCORDION_RETURN_NOT_OK(source.status());
  TableStats stats = CollectStats(schema, &source);
  // Next() returns nullptr both at EOF and on a parse error; distinguish.
  ACCORDION_RETURN_NOT_OK(source.status());
  return stats;
}

Status ExportTpchSplitCsv(const std::string& table, double scale_factor,
                          int split_index, int split_count,
                          const std::string& path) {
  return WriteCsvSplit(
      path, GenerateSplit(table, scale_factor, split_index, split_count));
}

}  // namespace accordion
