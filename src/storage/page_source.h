#ifndef ACCORDION_STORAGE_PAGE_SOURCE_H_
#define ACCORDION_STORAGE_PAGE_SOURCE_H_

#include <memory>

#include "tpch/tpch.h"
#include "vector/page.h"

namespace accordion {

/// Stream of pages backing one system split. Table-scan drivers pull from
/// exactly one PageSource at a time; a new source is opened per split.
class PageSource {
 public:
  virtual ~PageSource() = default;

  /// Next page, or nullptr when the split is exhausted.
  virtual PagePtr Next() = 0;

  /// Total rows this source will produce, if known (-1 otherwise). Feeds
  /// the scan-progress accounting the predictor relies on.
  virtual int64_t TotalRows() const { return -1; }
};

/// PageSource over the deterministic TPC-H generator (the default storage
/// backend: equivalent to reading a pre-generated CSV split, minus disk).
class GeneratorPageSource : public PageSource {
 public:
  GeneratorPageSource(std::string table, double scale_factor, int split_index,
                      int split_count, int64_t batch_rows = 1024)
      : gen_(std::move(table), scale_factor, split_index, split_count,
             batch_rows) {}

  PagePtr Next() override { return gen_.NextPage(); }
  int64_t TotalRows() const override { return gen_.TotalRows(); }

 private:
  TpchSplitGenerator gen_;
};

/// Wraps a source with content-keyed NULL injection (Page::InjectNulls)
/// for three-valued-logic differential testing. Enabled by
/// EngineConfig::null_injection_rate > 0; never used in production runs.
class NullInjectingPageSource : public PageSource {
 public:
  NullInjectingPageSource(std::unique_ptr<PageSource> inner, double rate,
                          uint64_t seed)
      : inner_(std::move(inner)), rate_(rate), seed_(seed) {}

  PagePtr Next() override {
    PagePtr page = inner_->Next();
    if (page == nullptr) return nullptr;
    return InjectNulls(page, rate_, seed_);
  }
  int64_t TotalRows() const override { return inner_->TotalRows(); }

 private:
  std::unique_ptr<PageSource> inner_;
  double rate_;
  uint64_t seed_;
};

}  // namespace accordion

#endif  // ACCORDION_STORAGE_PAGE_SOURCE_H_
