#ifndef ACCORDION_STORAGE_CSV_H_
#define ACCORDION_STORAGE_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "storage/page_source.h"
#include "vector/page.h"

namespace accordion {

/// CSV split files — the storage format the paper uses for TPC-H (Table 1:
/// "we used CSV format for data storage ... tables manually divided into
/// multiple splits before query processing").
///
/// Encoding: header-less, '|'-free plain CSV with minimal quoting ('"'
/// wrapping when a field contains comma/quote/newline). Dates rendered
/// ISO, doubles with full round-trip precision.

/// Writes pages as one CSV split file. Overwrites.
Status WriteCsvSplit(const std::string& path,
                     const std::vector<PagePtr>& pages);

/// Streaming reader of a CSV split typed by `schema`.
class CsvPageSource : public PageSource {
 public:
  CsvPageSource(std::string path, TableSchema schema,
                int64_t batch_rows = 1024);

  /// Must be checked before the first Next(): file-open or type errors.
  const Status& status() const { return status_; }

  PagePtr Next() override;

 private:
  std::string path_;
  TableSchema schema_;
  int64_t batch_rows_;
  std::ifstream in_;
  Status status_;
};

/// Scans a CSV split once and computes table statistics (row count,
/// per-column min/max and NDV sketches) — the load-time statistics pass
/// for CSV-backed tables, registered with Catalog::SetStats.
Result<TableStats> CollectCsvSplitStats(const std::string& path,
                                        const TableSchema& schema,
                                        int64_t batch_rows = 1024);

/// Materializes a generated TPC-H split into a CSV file at `path`
/// (the "manual pre-splitting" step from the paper's setup).
Status ExportTpchSplitCsv(const std::string& table, double scale_factor,
                          int split_index, int split_count,
                          const std::string& path);

}  // namespace accordion

#endif  // ACCORDION_STORAGE_CSV_H_
