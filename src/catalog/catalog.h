#ifndef ACCORDION_CATALOG_CATALOG_H_
#define ACCORDION_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "vector/data_type.h"
#include "vector/value.h"

namespace accordion {

/// One column of a table schema.
struct ColumnDef {
  std::string name;
  DataType type;
};

/// Table schema plus physical layout metadata (how the table is pre-split
/// across storage nodes, mirroring the paper's Table 1 setup).
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  /// Channel index of a column name, or -1.
  int ChannelOf(const std::string& column_name) const;

  DataType TypeOf(int channel) const { return columns_[channel].type; }

  std::vector<DataType> ColumnTypes() const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
};

/// Physical placement of one table: how many storage nodes hold it and how
/// many splits each node serves (paper Table 1's "partitioning scheme").
struct TableLayout {
  int num_nodes = 1;
  int splits_per_node = 1;
  int TotalSplits() const { return num_nodes * splits_per_node; }
};

/// Per-column statistics: non-null row count (== row count, the engine has
/// no nulls), min/max, and an estimated distinct count from a KMV sketch.
struct ColumnStats {
  DataType type = DataType::kInt64;
  int64_t row_count = 0;
  bool has_min_max = false;  // false for empty columns
  Value min;
  Value max;
  int64_t ndv = 0;

  /// NDV with a floor of 1 for non-empty columns (selectivity math divides
  /// by it).
  double NdvOrOne() const { return ndv > 0 ? static_cast<double>(ndv) : 1.0; }
};

/// Per-table statistics, parallel to the schema's column order. Collected
/// once at load time (CSV ingest or TPC-H catalog bootstrap) and consumed
/// by the cost-based optimizer.
struct TableStats {
  int64_t row_count = 0;
  std::vector<ColumnStats> columns;  // one per schema column
};

/// Name -> schema/layout/statistics registry shared by planner and workers.
class Catalog {
 public:
  void AddTable(TableSchema schema, TableLayout layout);

  Result<TableSchema> GetTable(const std::string& name) const;
  Result<TableLayout> GetLayout(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Attaches load-time statistics to a registered table (replacing any
  /// previous stats).
  void SetStats(const std::string& name, TableStats stats);

  /// Statistics for a table, or nullptr when none were collected. The
  /// pointer stays valid while the catalog lives and stats are not reset.
  const TableStats* GetStats(const std::string& name) const;

 private:
  std::map<std::string, TableSchema> tables_;
  std::map<std::string, TableLayout> layouts_;
  std::map<std::string, TableStats> stats_;
};

}  // namespace accordion

#endif  // ACCORDION_CATALOG_CATALOG_H_
