#include "catalog/catalog.h"

namespace accordion {

int TableSchema::ChannelOf(const std::string& column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<DataType> TableSchema::ColumnTypes() const {
  std::vector<DataType> types;
  types.reserve(columns_.size());
  for (const auto& col : columns_) types.push_back(col.type);
  return types;
}

void Catalog::AddTable(TableSchema schema, TableLayout layout) {
  std::string name = schema.name();
  tables_[name] = std::move(schema);
  layouts_[name] = layout;
}

Result<TableSchema> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

Result<TableLayout> Catalog::GetLayout(const std::string& name) const {
  auto it = layouts_.find(name);
  if (it == layouts_.end()) {
    return Status::NotFound("no layout for table '" + name + "'");
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

void Catalog::SetStats(const std::string& name, TableStats stats) {
  stats_[name] = std::move(stats);
}

const TableStats* Catalog::GetStats(const std::string& name) const {
  auto it = stats_.find(name);
  return it == stats_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, schema] : tables_) names.push_back(name);
  return names;
}

}  // namespace accordion
