// Quickstart: spin up a simulated Accordion cluster, run SQL against the
// built-in TPC-H data, and read the results — the "Welcome to Accordion
// Cloud!" flow from the paper's Figure 1, minus the web UI.
//
//   $ ./quickstart
//
// Shows: cluster construction, SQL -> distributed plan, submission, and
// result consumption.

#include <cstdio>

#include "cluster/cluster.h"
#include "sql/analyzer.h"

int main() {
  using namespace accordion;
  setvbuf(stdout, nullptr, _IOLBF, 0);

  // A small cluster: 2 compute workers + 2 storage nodes, TPC-H SF 0.01.
  AccordionCluster::Options options;
  options.num_workers = 2;
  options.num_storage_nodes = 2;
  options.scale_factor = 0.01;
  options.engine.cost.scale = 0.02;  // quick demo: minimal simulated work
  AccordionCluster cluster(options);
  Coordinator* coordinator = cluster.coordinator();

  const char* sql =
      "SELECT c_mktsegment, count(*) AS customers, avg(c_acctbal) AS "
      "avg_balance "
      "FROM customer GROUP BY c_mktsegment ORDER BY customers DESC LIMIT 5";
  std::printf("SQL> %s\n\n", sql);

  auto plan = SqlToPlan(sql, coordinator->catalog());
  if (!plan.ok()) {
    std::printf("planning failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  auto query_id = coordinator->Submit(*plan);
  if (!query_id.ok()) {
    std::printf("submit failed: %s\n", query_id.status().ToString().c_str());
    return 1;
  }
  auto result = coordinator->Wait(*query_id);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%-12s  %10s  %12s\n", "segment", "customers", "avg_balance");
  for (const auto& page : *result) {
    for (int64_t r = 0; r < page->num_rows(); ++r) {
      std::printf("%-12s  %10lld  %12.2f\n",
                  page->column(0).StrAt(r).c_str(),
                  static_cast<long long>(page->column(1).IntAt(r)),
                  page->column(2).DoubleAt(r));
    }
  }

  auto snapshot = coordinator->Snapshot(*query_id);
  if (snapshot.ok()) {
    std::printf("\nExecuted as %zu stages, %lld RPC requests, %.0f ms "
                "initial schedule.\n",
                snapshot->stages.size(),
                static_cast<long long>(coordinator->total_rpc_requests()),
                snapshot->initial_schedule_ms);
  }
  return 0;
}
