// Quickstart: spin up a simulated Accordion cluster, run SQL against the
// built-in TPC-H data through a Session, and stream the results — the
// "Welcome to Accordion Cloud!" flow from the paper's Figure 1, minus the
// web UI.
//
//   $ ./quickstart
//
// Shows: cluster construction, EXPLAIN, SQL -> distributed execution,
// cursor-based result streaming, and prepared statements.

#include <cstdio>

#include "api/session.h"
#include "cluster/cluster.h"

int main() {
  using namespace accordion;
  setvbuf(stdout, nullptr, _IOLBF, 0);

  // A small cluster: 2 compute workers + 2 storage nodes, TPC-H SF 0.01.
  AccordionCluster::Options options;
  options.num_workers = 2;
  options.num_storage_nodes = 2;
  options.scale_factor = 0.01;
  options.engine.cost.scale = 0.02;  // quick demo: minimal simulated work
  AccordionCluster cluster(options);
  Session session(cluster.coordinator());

  const char* sql =
      "SELECT c_mktsegment, count(*) AS customers, avg(c_acctbal) AS "
      "avg_balance "
      "FROM customer GROUP BY c_mktsegment ORDER BY customers DESC LIMIT 5";
  std::printf("SQL> %s\n\n", sql);

  auto explain = session.Explain(sql);
  if (explain.ok()) std::printf("EXPLAIN:\n%s\n", explain->c_str());

  auto query = session.Execute(sql);
  if (!query.ok()) {
    std::printf("execute failed: %s\n", query.status().ToString().c_str());
    return 1;
  }

  // Results stream page by page off the running query's output buffer.
  std::printf("%-12s  %10s  %12s\n", "segment", "customers", "avg_balance");
  ResultCursor cursor = (*query)->Cursor();
  while (true) {
    auto page = cursor.Next();
    if (!page.ok()) {
      std::printf("query failed: %s\n", page.status().ToString().c_str());
      return 1;
    }
    if (*page == nullptr) break;  // end of stream
    for (int64_t r = 0; r < (*page)->num_rows(); ++r) {
      std::printf("%-12s  %10lld  %12.2f\n",
                  (*page)->column(0).StrAt(r).c_str(),
                  static_cast<long long>((*page)->column(1).IntAt(r)),
                  (*page)->column(2).DoubleAt(r));
    }
  }

  // Prepared statement: one parse, many parameterized executions.
  auto prepared = session.Prepare(
      "SELECT count(c_custkey) AS n FROM customer WHERE c_mktsegment = ?");
  if (prepared.ok()) {
    std::printf("\nPrepared: %s\n", prepared->sql().c_str());
    for (const char* segment : {"BUILDING", "MACHINERY"}) {
      auto bound = session.Execute(*prepared, {Value::Str(segment)});
      if (!bound.ok()) continue;
      auto pages = (*bound)->Wait();
      if (pages.ok() && !pages->empty()) {
        std::printf("  %s customers: %lld\n", segment,
                    static_cast<long long>((*pages)[0]->column(0).IntAt(0)));
      }
    }
  }

  auto snapshot = (*query)->Snapshot();
  if (snapshot.ok()) {
    std::printf("\nExecuted as %zu stages, %lld RPC requests, %.0f ms "
                "initial schedule; cursor streamed %lld rows in %lld pages.\n",
                snapshot->stages.size(),
                static_cast<long long>(
                    cluster.coordinator()->total_rpc_requests()),
                snapshot->initial_schedule_ms,
                static_cast<long long>(cursor.rows_seen()),
                static_cast<long long>(cursor.pages_seen()));
  }
  return 0;
}
