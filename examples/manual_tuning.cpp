// Manual runtime DOP tuning — the paper's controller-interface workflow
// (Fig. 2): start TPC-H Q3 at minimal parallelism, watch the runtime
// information, locate the bottleneck stage, and widen it mid-query
// through the query handle. The same query is then run untouched for
// comparison.
//
//   $ ./manual_tuning

#include <cstdio>

#include "api/session.h"
#include "cluster/cluster.h"
#include "common/clock.h"
#include "tpch/queries.h"
#include "tuner/auto_tuner.h"

namespace {

using namespace accordion;

AccordionCluster::Options DemoOptions() {
  AccordionCluster::Options options;
  options.num_workers = 4;
  options.num_storage_nodes = 4;
  options.scale_factor = 0.01;
  options.engine.cost.scale = 4.0;
  options.engine.initial_buffer_bytes = 2048;
  options.engine.max_buffer_bytes = 16 * 1024;
  return options;
}

double QuerySeconds(const QueryHandlePtr& query) {
  auto snapshot = query->Snapshot();
  if (!snapshot.ok() || snapshot->end_ms == 0) return -1;
  return (snapshot->end_ms - snapshot->submit_ms) * 1e-3;
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);

  // Baseline: Q3 at DOP 1, no intervention.
  double baseline;
  {
    AccordionCluster cluster(DemoOptions());
    Session session(cluster.coordinator());
    auto query = session.Execute(TpchQueryPlan(3, session.catalog()));
    (void)(*query)->Wait();
    baseline = QuerySeconds(*query);
    std::printf("Baseline Q3 at DOP 1: %.2fs\n\n", baseline);
  }

  // Elastic run: observe, localize, tune.
  AccordionCluster cluster(DemoOptions());
  Session session(cluster.coordinator());
  AutoTuner tuner(cluster.coordinator());
  auto query = session.Execute(TpchQueryPlan(3, session.catalog()));
  std::printf("Submitted Q3 as %s at stage/task DOP 1.\n",
              (*query)->id().c_str());

  SleepForMillis(800);
  auto bottlenecks =
      LocateBottlenecks(cluster.coordinator(), (*query)->id(), 500);
  if (bottlenecks.ok()) {
    std::printf("Compute bottlenecks:");
    for (int s : bottlenecks->compute_bottlenecks) std::printf(" S%d", s);
    std::printf("\n");
  }

  // What-if before committing (the paper's "Get Tips" button).
  auto estimate = tuner.predictor()->EstimateRemaining((*query)->id(), 1);
  SleepForMillis(500);
  estimate = tuner.predictor()->EstimateRemaining((*query)->id(), 1);
  if (estimate.ok()) {
    auto what_if = tuner.predictor()->PredictAfterTuning((*query)->id(), 1, 4);
    std::printf("S1: %.1fs remaining at current DOP; predicted %.1fs at "
                "DOP 4.\n",
                estimate->remaining_seconds,
                what_if.ok() ? what_if->predicted_seconds : -1.0);
  }

  // Apply: widen the long-running join stage and the lineitem scan (the
  // orders/customer join S3 completes early at this scale).
  for (auto [stage, dop] : {std::pair{1, 4}, {2, 4}}) {
    DopSwitchReport report;
    Status st = tuner.Tune((*query)->id(), stage, dop, &report);
    std::printf("Tune S%d -> DOP %d: %s", stage, dop,
                st.ok() ? "accepted" : st.ToString().c_str());
    if (st.ok() && report.total_seconds > 0) {
      std::printf(" (state transfer %.2fs)", report.total_seconds);
    }
    std::printf("\n");
  }

  (void)(*query)->Wait();
  double tuned = QuerySeconds(*query);
  std::printf("\nElastic Q3: %.2fs vs baseline %.2fs -> %.1f%% faster "
              "(paper Q3: 58-74%% reductions).\n",
              tuned, baseline, 100.0 * (baseline - tuned) / baseline);
  return 0;
}
