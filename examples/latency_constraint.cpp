// Meeting a latency constraint with minimal resources — the paper's
// headline use case (§1, §6.5): "use as few compute resources as possible
// while meeting the query time constraint."
//
// The DOP monitor watches the query's tuning units and applies AP/RP
// actions; we print its decision log and whether the deadline held.
//
//   $ ./latency_constraint

#include <cstdio>

#include "api/session.h"
#include "cluster/cluster.h"
#include "common/clock.h"
#include "tpch/queries.h"
#include "tuner/auto_tuner.h"

int main() {
  using namespace accordion;
  setvbuf(stdout, nullptr, _IOLBF, 0);

  AccordionCluster::Options options;
  options.num_workers = 4;
  options.num_storage_nodes = 4;
  options.scale_factor = 0.01;
  options.engine.cost.scale = 6.0;
  options.engine.initial_buffer_bytes = 2048;
  options.engine.max_buffer_bytes = 16 * 1024;
  AccordionCluster cluster(options);

  // Session defaults apply to every Execute: this client always starts
  // its queries at stage DOP 2.
  SessionOptions session_options;
  session_options.query_defaults.stage_dop = 2;
  session_options.query_defaults.task_dop = 1;
  Session session(cluster.coordinator(), session_options);
  AutoTuner tuner(cluster.coordinator());

  constexpr double kDeadlineSeconds = 8.0;
  auto query = session.Execute(TpchQ2JPlan(session.catalog()));
  if (!query.ok()) {
    std::printf("execute failed: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("Q2J submitted with an %.0fs deadline; the DOP monitor will "
              "keep it on schedule with minimal parallelism.\n",
              kDeadlineSeconds);

  AutoTuner::TuningUnit unit;
  unit.knob_stage = 1;  // the join stage, paced by the lineitem scan
  unit.deadline_seconds = kDeadlineSeconds;
  unit.max_dop = 8;
  if (!tuner.StartMonitor((*query)->id(), {unit}, 500).ok()) return 1;

  (void)(*query)->Wait();
  auto snapshot = (*query)->Snapshot();
  double total = (snapshot->end_ms - snapshot->submit_ms) * 1e-3;

  std::printf("\nMonitor decisions:\n");
  for (const auto& action : tuner.MonitorLog((*query)->id())) {
    std::printf("  %s S%d: %d -> %d at %.2fs%s\n",
                action.to_dop > action.from_dop ? "AP" : "RP", action.stage,
                action.from_dop, action.to_dop, action.at_seconds,
                action.rejected ? " (rejected)" : "");
  }
  tuner.StopMonitor((*query)->id());

  std::printf("\nFinished in %.2fs (deadline %.0fs) -> %s\n", total,
              kDeadlineSeconds,
              total <= kDeadlineSeconds * 1.15 ? "constraint met"
                                               : "constraint missed");
  return 0;
}
