// Driving an experiment with the built-in scripting language (paper §6.1)
// — the mechanism behind every timing figure in the evaluation: query
// initiation and parallelism adjustments at specified times, with accepts
// and rejections recorded. Scripts run through the Session front door, so
// a registered name can hold a hand-built plan or plain SQL text.
//
//   $ ./experiment_script

#include <cstdio>

#include "api/session.h"
#include "cluster/cluster.h"
#include "script/script.h"
#include "tpch/queries.h"

int main() {
  using namespace accordion;
  setvbuf(stdout, nullptr, _IOLBF, 0);

  AccordionCluster::Options options;
  options.num_workers = 4;
  options.num_storage_nodes = 4;
  options.scale_factor = 0.01;
  options.engine.cost.scale = 2.0;
  options.engine.initial_buffer_bytes = 2048;
  options.engine.max_buffer_bytes = 16 * 1024;
  AccordionCluster cluster(options);
  Session session(cluster.coordinator());
  AutoTuner tuner(cluster.coordinator());

  ScriptExecutor executor(&session, &tuner);
  // The two-way join of §4.4, registered once as SQL text...
  executor.RegisterSql("q2j",
                       "SELECT count(l_orderkey) AS cnt FROM lineitem "
                       "INNER JOIN orders ON l_orderkey = o_orderkey");
  // ...and once as the hand-built plan (identical stage tree).
  executor.RegisterPlan("q2j_plan", TpchQ2JPlan(session.catalog()));

  const char* script = R"(
# Fig. 26-style experiment: start the two-way join at stage DOP 2,
# switch the join stage as the lineitem scan progresses, and attempt one
# unreasonable request near the end (the filter should reject it).
option stage_dop 2
option task_dop 1
submit q2j
at_progress 0.2 1 stage_dop 1 4
at_progress 0.5 1 stage_dop 1 6
at_progress 0.95 1 stage_dop 1 8
wait 300
)";
  std::printf("Running experiment script:%s\n", script);

  auto report = executor.Run(script);
  if (!report.ok()) {
    std::printf("script failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report->ToString().c_str());
  return 0;
}
